"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config.system import SystemConfig, default_system_config
from repro.harness.figures import DEFAULT_SUITE_PARAMS
from repro.kernel.builder import KernelBuilder
from repro.sim.launch import KernelLaunch


@pytest.fixture
def config() -> SystemConfig:
    return default_system_config()


@pytest.fixture
def suite_params() -> dict:
    """Small problem sizes used for fast workload tests."""
    return dict(DEFAULT_SUITE_PARAMS)


@pytest.fixture
def scan_launch():
    """A small dMT prefix-sum kernel (Fig. 6) with its input data."""
    n = 32
    builder = KernelBuilder("scan_fixture", n)
    builder.global_array("in_data", n)
    builder.global_array("prefix", n)
    tid = builder.thread_idx_x()
    value = builder.load("in_data", tid)
    running = builder.from_thread_or_const("sum", -1, 0.0)
    total = running + value
    builder.tag_value("sum", total)
    builder.store("prefix", tid, total)
    graph = builder.finish()
    data = np.arange(1.0, n + 1.0)
    return KernelLaunch(graph, {"in_data": data}), data
