"""Tests for the analysis layer: ΔTID CDF, comparisons, report rendering."""

import pytest

from repro.analysis.comparison import ArchitectureComparison, ComparisonTable, geomean
from repro.analysis.delta_cdf import build_cdf
from repro.analysis.report import (
    format_table,
    render_figure5,
    render_figure11,
    render_figure12,
    render_table3,
)
from repro.workloads.registry import all_workloads, paper_workloads, table3


# ------------------------------------------------------------------ geomean
def test_geomean_basics():
    assert geomean([2, 8]) == pytest.approx(4.0)
    assert geomean([]) == 0.0
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])


# --------------------------------------------------------------- comparison
def _table():
    table = ComparisonTable()
    table.add(ArchitectureComparison(
        workload="a", cycles={"fermi": 1000, "mt": 500, "dmt": 250},
        energy_pj={"fermi": 100.0, "mt": 40.0, "dmt": 20.0}))
    table.add(ArchitectureComparison(
        workload="b", cycles={"fermi": 900, "mt": 450, "dmt": 100},
        energy_pj={"fermi": 90.0, "mt": 30.0, "dmt": 10.0}))
    return table


def test_speedups_and_efficiencies():
    table = _table()
    assert table.speedups("dmt")["a"] == pytest.approx(4.0)
    assert table.geomean_speedup("mt") == pytest.approx(2.0)
    assert table.max_speedup("dmt") == pytest.approx(9.0)
    assert table.energy_efficiencies("dmt")["b"] == pytest.approx(9.0)
    summary = table.summary()
    assert summary["geomean_speedup_dmt"] > summary["geomean_speedup_mt"]


def test_row_lookup():
    table = _table()
    assert table.row("a").workload == "a"
    with pytest.raises(KeyError):
        table.row("missing")


# ----------------------------------------------------------------- delta CDF
def test_delta_cdf_over_the_suite_shows_locality():
    graphs = [w.build_dmt(w.default_params()) for w in all_workloads()]
    cdf = build_cdf(graphs)
    assert cdf.total_tokens > 0
    points = cdf.points()
    assert points == sorted(points)
    assert 0.0 < points[-1][1] <= 1.0 + 1e-9
    # The paper's locality observation: most transfers fit a 16-entry buffer.
    assert cdf.fraction_within(16) >= 0.5
    assert cdf.fraction_within(cdf.max_distance()) == pytest.approx(1.0)


def test_delta_cdf_monotone():
    graphs = [w.build_dmt(w.default_params()) for w in all_workloads()[:3]]
    cdf = build_cdf(graphs)
    fractions = [f for _, f in cdf.points()]
    assert all(b >= a for a, b in zip(fractions, fractions[1:]))


# -------------------------------------------------------------------- report
def test_format_table_alignment():
    text = format_table(["a", "bbbb"], [[1, 2], [333, 4]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")


def test_render_table3_lists_all_kernels():
    # The default render is the paper's own Table 3 inventory ...
    text = render_table3(table3())
    for workload in paper_workloads():
        assert workload.kernel_name in text
    # ... and registry extensions appear only when passed explicitly.
    assert "spmv" not in text
    full = render_table3(table3(all_workloads()))
    for workload in all_workloads():
        assert workload.kernel_name in full


def test_render_figures_include_geomean():
    table = _table()
    assert "geomean" in render_figure11(table)
    assert "geomean" in render_figure12(table)


def test_render_figure5_reports_buffer_coverage():
    graphs = [w.build_dmt(w.default_params()) for w in all_workloads()[:3]]
    text = render_figure5(build_cdf(graphs))
    assert "<= 16" in text
