"""Campaign spec expansion: grid x zip sweeps, overrides, point identity."""

import json

import pytest

from repro.config.system import default_system_config
from repro.errors import ExplorationError
from repro.explore.spec import CampaignSpec, RunPoint, apply_override, load_spec


def test_grid_axes_cross_and_zip_axes_lockstep():
    spec = CampaignSpec(
        name="both",
        workloads=("matrixMul",),
        grid=(("token_buffer.entries", (8, 16)), ("cores", (1, 2))),
        zipped=(("grid.rows", (10, 12)), ("grid.cols", (14, 12))),
    )
    combos = spec.override_combos()
    # 2 x 2 grid combinations, each crossed with 2 zip rows.
    assert len(combos) == 8
    assert all(len(combo) == 4 for combo in combos)
    # Zip axes never mix: rows=10 always pairs with cols=14.
    for combo in combos:
        values = dict(combo)
        assert (values["grid.rows"], values["grid.cols"]) in ((10, 14), (12, 12))


def test_expand_multiplies_workloads_variants_seeds():
    spec = CampaignSpec(
        name="mul",
        workloads=("matrixMul", "convolution"),
        variants=("mt", "dmt"),
        seeds=(0, 1),
        grid=(("token_buffer.entries", (8, 16, 32)),),
    )
    points = spec.expand()
    assert len(points) == 2 * 2 * 2 * 3
    assert len({p.key() for p in points}) == len(points)


def test_duplicate_swept_path_rejected():
    with pytest.raises(ExplorationError):
        CampaignSpec(
            name="dup",
            workloads=("matrixMul",),
            grid=(("cores", (1, 2)),),
            zipped=(("cores", (4, 8)),),
        )
    with pytest.raises(ExplorationError):
        CampaignSpec(
            name="dup-grid",
            workloads=("matrixMul",),
            grid=(("cores", (1, 2)), ("cores", (4,))),
        )


def test_payload_carries_overrides():
    spec = CampaignSpec(
        name="payload",
        workloads=("matrixMul",),
        grid=(("token_buffer.entries", (8,)),),
    )
    (point,) = spec.expand()
    payload = point.payload()
    assert payload["overrides"] == {"token_buffer.entries": 8}
    assert payload["config"]["token_buffer"]["entries"] == 8


def test_zip_axes_must_have_equal_lengths():
    with pytest.raises(ExplorationError):
        CampaignSpec(
            name="bad",
            workloads=("matrixMul",),
            zipped=(("grid.rows", (10, 12)), ("grid.cols", (14,))),
        )


def test_unknown_workload_variant_engine_rejected():
    with pytest.raises(ExplorationError):
        CampaignSpec(name="w", workloads=("nope",))
    with pytest.raises(ExplorationError):
        CampaignSpec(name="v", workloads=("matrixMul",), variants=("warp",))
    with pytest.raises(ExplorationError):
        CampaignSpec(name="e", workloads=("matrixMul",), engines=("fast",))


def test_apply_override_rejects_unknown_paths():
    data = default_system_config().to_dict()
    apply_override(data, "token_buffer.entries", 8)
    assert data["token_buffer"]["entries"] == 8
    apply_override(data, "cores", 4)
    assert data["cores"] == 4
    with pytest.raises(ExplorationError):
        apply_override(data, "token_buffer.depth", 8)
    with pytest.raises(ExplorationError):
        apply_override(data, "warp.size", 32)
    with pytest.raises(ExplorationError):
        apply_override(data, "memory.l1", {})  # a group, not a field


def test_point_key_is_order_independent_and_config_sensitive():
    a = RunPoint(
        workload="matrixMul",
        variant="dmt",
        overrides=(("cores", 2), ("token_buffer.entries", 8)),
    )
    b = RunPoint(
        workload="matrixMul",
        variant="dmt",
        overrides=(("token_buffer.entries", 8), ("cores", 2)),
    )
    # Frozen dataclass equality is positional, but keys are canonical.
    assert a.key() == b.key()
    c = RunPoint(workload="matrixMul", variant="dmt", overrides=(("cores", 4),))
    assert a.key() != c.key()
    assert a.key() != RunPoint(workload="matrixMul", variant="dmt", seed=1).key()


def test_spec_round_trips_through_json_file(tmp_path):
    data = {
        "name": "file-spec",
        "workloads": ["reduce"],
        "variants": ["dmt"],
        "seeds": [0, 7],
        "params": {"reduce": {"n": 128, "window": 32}},
        "sweep": {"grid": {"memory.dram.access_latency": [110, 220]}},
    }
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(data))
    spec = load_spec(path)
    assert spec.name == "file-spec"
    assert len(spec.expand()) == 4
    with pytest.raises(ExplorationError):
        load_spec(tmp_path / "missing.json")
    (tmp_path / "broken.json").write_text("{not json")
    with pytest.raises(ExplorationError):
        load_spec(tmp_path / "broken.json")


def test_key_hashes_resolved_workload_defaults(monkeypatch):
    from repro.workloads.matmul import MatmulWorkload

    implicit = RunPoint(workload="matrixMul", variant="dmt")
    explicit = RunPoint(
        workload="matrixMul",
        variant="dmt",
        params=tuple(sorted(MatmulWorkload().default_params().items())),
    )
    # Spelling out the defaults is the same experiment: same cache entry.
    before = implicit.key()
    assert explicit.key() == before
    # Changing a workload default must be a cache miss, not a stale hit.
    monkeypatch.setattr(MatmulWorkload, "default_params", lambda self: {"dim": 99})
    assert implicit.key() != before


def test_param_typos_fail_at_spec_time():
    with pytest.raises(ExplorationError):
        CampaignSpec(
            name="typo",
            workloads=("matrixMul",),
            params={"matrixMul": {"dmi": 4}},
        )


def test_from_dict_rejects_malformed_shapes():
    base = {"name": "x", "workloads": ["matrixMul"]}
    with pytest.raises(ExplorationError):
        CampaignSpec.from_dict({**base, "workloads": "matrixMul"})
    with pytest.raises(ExplorationError):
        CampaignSpec.from_dict({**base, "seeds": ["a"]})
    with pytest.raises(ExplorationError):
        CampaignSpec.from_dict({**base, "seeds": 3})
    with pytest.raises(ExplorationError):
        CampaignSpec.from_dict({**base, "params": {"matrixMul": [1, 2]}})
    with pytest.raises(ExplorationError):
        CampaignSpec.from_dict({**base, "base_config": "fast"})
    with pytest.raises(ExplorationError):
        CampaignSpec.from_dict({**base, "sweep": {"grid": {"cores": [1, 1]}}})


def test_spec_rejects_unknown_keys():
    with pytest.raises(ExplorationError):
        CampaignSpec.from_dict({"name": "x", "workloads": ["matrixMul"], "sweeps": {}})
    with pytest.raises(ExplorationError):
        CampaignSpec.from_dict({"name": "x", "workloads": ["matrixMul"], "sweep": {"cross": {}}})


def test_base_config_merges_under_overrides():
    spec = CampaignSpec(
        name="base",
        workloads=("matrixMul",),
        base_config={"noc": {"hop_latency": 3}},
        grid=(("token_buffer.entries", (8,)),),
    )
    (point,) = spec.expand()
    config = point.config()
    assert config.noc.hop_latency == 3
    assert config.token_buffer.entries == 8
