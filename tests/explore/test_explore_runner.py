"""Campaign runner: cache hits, resume, worker error capture, parallelism."""

import json

import pytest

from repro.errors import ExplorationError
from repro.explore.cache import ResultCache
from repro.explore.runner import campaign_status, execute_point, run_campaign
from repro.explore.spec import CACHE_SCHEMA_VERSION, CampaignSpec


def _tiny_spec(**kwargs) -> CampaignSpec:
    defaults = dict(
        name="tiny",
        workloads=("matrixMul",),
        variants=("dmt",),
        params={"matrixMul": {"dim": 4}},
        grid=(("token_buffer.entries", (8, 16)),),
    )
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


def test_second_run_of_identical_spec_is_all_hits(tmp_path):
    spec = _tiny_spec()
    cold = run_campaign(spec, jobs=1, cache_dir=tmp_path)
    assert cold.misses == 2 and cold.hits == 0 and not cold.errors
    warm = run_campaign(spec, jobs=1, cache_dir=tmp_path)
    assert warm.hits == 2 and warm.misses == 0
    # Byte-identical reconstruction of the spec hits too.
    again = CampaignSpec(
        name="tiny",
        workloads=("matrixMul",),
        variants=("dmt",),
        params={"matrixMul": {"dim": 4}},
        grid=(("token_buffer.entries", (8, 16)),),
    )
    assert run_campaign(again, jobs=1, cache_dir=tmp_path).hits == 2


def test_different_config_is_a_miss(tmp_path):
    run_campaign(_tiny_spec(), jobs=1, cache_dir=tmp_path)
    wider = _tiny_spec(grid=(("token_buffer.entries", (8, 32)),))
    result = run_campaign(wider, jobs=1, cache_dir=tmp_path)
    assert result.hits == 1  # entries=8 shared, entries=32 new
    assert result.misses == 1


def test_resume_after_kill_with_partial_jsonl(tmp_path):
    """Simulate a killed campaign: one complete record, one truncated line."""
    spec = _tiny_spec()
    full = run_campaign(spec, jobs=1, cache_dir=tmp_path)
    keys = [outcome.key for outcome in full.outcomes]
    cache_file = ResultCache(tmp_path).path
    lines = cache_file.read_text().splitlines()
    assert len(lines) == 2
    # Keep the first record whole, truncate the second mid-JSON.
    cache_file.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2])
    status = campaign_status(spec, cache_dir=tmp_path)
    assert status == {"points": 2, "cached": 1, "missing": 1, "errors": 0}
    resumed = run_campaign(spec, jobs=1, cache_dir=tmp_path)
    assert resumed.hits == 1 and resumed.misses == 1 and not resumed.errors
    assert {o.key for o in resumed.outcomes} == set(keys)
    assert campaign_status(spec, cache_dir=tmp_path)["missing"] == 0


def test_worker_error_is_captured_not_fatal(tmp_path):
    """A point that raises inside the pool yields an error record and the
    campaign still completes the remaining points."""
    spec = CampaignSpec(
        name="mixed",
        workloads=("matrixMul", "scan"),
        # scan's cyclic recurrence has no windowed dMT form -> its point
        # raises WorkloadError inside the worker process.
        variants=("dmt_win",),
        params={"matrixMul": {"dim": 4}},
    )
    result = run_campaign(spec, jobs=2, cache_dir=tmp_path)
    assert result.total == 2
    by_workload = {o.point.workload: o for o in result.outcomes}
    assert by_workload["matrixMul"].ok
    failed = by_workload["scan"]
    assert not failed.ok
    assert "WorkloadError" in failed.record["error"]
    assert failed.record["traceback"]
    # The failure is cached like any record: re-running is all hits.
    warm = run_campaign(spec, jobs=2, cache_dir=tmp_path)
    assert warm.hits == 2
    assert campaign_status(spec, cache_dir=tmp_path)["errors"] == 1


def test_rerun_errors_invalidates_cached_error_records(tmp_path):
    """``--rerun-errors`` re-simulates exactly the cached error points:
    the failing point is executed again (a fresh record replaces the
    cached one) while successful records stay cache hits."""
    spec = CampaignSpec(
        name="mixed",
        workloads=("matrixMul", "scan"),
        # scan has no windowed dMT variant -> its point errors in the worker.
        variants=("dmt_win",),
        params={"matrixMul": {"dim": 4}},
    )
    cold = run_campaign(spec, jobs=1, cache_dir=tmp_path)
    assert len(cold.errors) == 1
    # A plain re-run serves the error from the cache and simulates nothing.
    warm = run_campaign(spec, jobs=1, cache_dir=tmp_path)
    assert warm.hits == 2 and warm.misses == 0

    rerun = run_campaign(spec, jobs=1, cache_dir=tmp_path, rerun_errors=True)
    assert rerun.hits == 1 and rerun.misses == 1  # only the error point re-ran
    by_workload = {o.point.workload: o for o in rerun.outcomes}
    assert by_workload["matrixMul"].cached
    assert not by_workload["scan"].cached  # re-simulated, not served from cache
    assert not by_workload["scan"].ok  # still an error, now freshly produced

    # The fresh record was appended: a later load still sees one record per
    # key and the campaign remains fully cached without --rerun-errors.
    cached_again = run_campaign(spec, jobs=1, cache_dir=tmp_path)
    assert cached_again.hits == 2 and cached_again.misses == 0
    assert campaign_status(spec, cache_dir=tmp_path)["errors"] == 1


def test_rerun_errors_fixes_point_when_error_was_transient(tmp_path, monkeypatch):
    """If the underlying cause is gone (here: the cached record was an
    artifact), --rerun-errors replaces the error record with the fresh ok
    result and later runs hit the cache."""
    spec = _tiny_spec(grid=(("token_buffer.entries", (8,)),))
    (point,) = spec.expand()
    cache = ResultCache(tmp_path)
    cache.put(
        point.key(),
        {
            "point": {"workload": point.workload},
            "status": "error",
            "result": None,
            "error": "RuntimeError: transient infrastructure failure",
            "traceback": "",
            "duration_s": 0.0,
        },
    )
    assert campaign_status(spec, cache_dir=tmp_path)["errors"] == 1
    result = run_campaign(spec, jobs=1, cache_dir=tmp_path, rerun_errors=True)
    assert result.misses == 1 and not result.errors
    assert campaign_status(spec, cache_dir=tmp_path)["errors"] == 0
    assert run_campaign(spec, jobs=1, cache_dir=tmp_path).hits == 1


def test_parallel_matches_serial_records(tmp_path):
    spec = _tiny_spec(
        workloads=("matrixMul", "convolution"),
        params={"matrixMul": {"dim": 4}, "convolution": {"n": 32}},
    )
    serial = run_campaign(spec, jobs=1, cache_dir=tmp_path / "serial")
    parallel = run_campaign(spec, jobs=4, cache_dir=tmp_path / "parallel")
    assert serial.total == parallel.total == 4
    for left, right in zip(serial.outcomes, parallel.outcomes):
        assert left.key == right.key
        assert left.record["result"]["counters"] == right.record["result"]["counters"]


def test_execute_point_is_self_contained():
    spec = _tiny_spec(grid=(("token_buffer.entries", (8,)),))
    (point,) = spec.expand()
    payload = point.payload()
    # The payload must survive a JSON round-trip (a fortiori a pickle one).
    record = execute_point(json.loads(json.dumps(payload)))
    assert record["status"] == "ok"
    assert record["result"]["cycles"] > 0
    assert record["point"]["config_digest"]
    assert record["duration_s"] >= 0


def test_jobs_must_be_positive(tmp_path):
    with pytest.raises(ExplorationError):
        run_campaign(_tiny_spec(), jobs=0, cache_dir=tmp_path)


def test_schema_version_bump_invalidates_cache(tmp_path, monkeypatch):
    spec = _tiny_spec()
    run_campaign(spec, jobs=1, cache_dir=tmp_path)
    monkeypatch.setattr("repro.explore.spec.CACHE_SCHEMA_VERSION", CACHE_SCHEMA_VERSION + 1)
    assert campaign_status(spec, cache_dir=tmp_path)["cached"] == 0
