"""End-to-end campaign on matrixMul: records match direct runs bit-for-bit."""

import json

from repro.config.system import SystemConfig
from repro.explore.analysis import (
    best_per_workload,
    pareto_front,
    render_campaign_report,
    sensitivity_rows,
)
from repro.explore.runner import run_campaign
from repro.explore.spec import CampaignSpec
from repro.harness.experiments import run_workload


def test_two_point_campaign_matches_direct_run_workload(tmp_path):
    spec = CampaignSpec(
        name="e2e",
        workloads=("matrixMul",),
        variants=("dmt",),
        seeds=(3,),
        params={"matrixMul": {"dim": 4}},
        grid=(("token_buffer.entries", (8, 16)),),
    )
    result = run_campaign(spec, jobs=1, cache_dir=tmp_path)
    assert result.total == 2 and not result.errors

    for outcome in result.outcomes:
        record = outcome.record["result"]
        direct = run_workload(
            "matrixMul",
            "dmt",
            params={"dim": 4},
            seed=3,
            config=outcome.point.config(),
            engine="auto",
        )
        # Bit-for-bit: every counter the direct run reports, with the same
        # value, after a JSON round-trip of the campaign record.
        round_tripped = json.loads(json.dumps(record))
        assert round_tripped["counters"] == dict(direct.counters)
        assert round_tripped["cycles"] == direct.cycles
        assert round_tripped["energy_pj"] == direct.energy.total_pj
        assert round_tripped["params"] == direct.params
        assert record["params"]["seed"] == 3

    # Provenance satellite: cached rows record the *resolved* engine
    # (never "auto") and the core count.  matrixMul dmt is feed-forward
    # communicating, so auto dispatch resolves to the window-batched
    # engine.
    counters = result.outcomes[0].record["result"]["counters"]
    assert counters["engine"] == "window-batched"
    assert counters["cores"] == 1


def test_campaign_report_renders_all_sections(tmp_path):
    spec = CampaignSpec(
        name="report",
        workloads=("matrixMul",),
        variants=("stream",),
        params={"matrixMul": {"dim": 4}},
        grid=(("token_buffer.entries", (8, 16)), ("cores", (1, 2))),
    )
    result = run_campaign(spec, jobs=1, cache_dir=tmp_path)
    records = result.records()
    report = render_campaign_report(spec, records)
    assert "Pareto frontier" in report
    assert "Sensitivity to token_buffer.entries" in report
    assert "Sensitivity to cores" in report
    assert "Best configuration per workload" in report
    assert "matrixMul" in report

    front = pareto_front(records)
    assert front, "at least one point must be non-dominated"
    cycles = [r["result"]["cycles"] for r in front]
    energies = [r["result"]["energy_pj"] for r in front]
    assert cycles == sorted(cycles)
    assert energies == sorted(energies, reverse=True)

    rows = sensitivity_rows(records, "cores")
    assert [value for value, *_ in rows] == [1, 2]
    assert all(count == 2 for _, count, *_ in rows)

    best = best_per_workload(records)
    assert set(best) == {"matrixMul"}
    assert best["matrixMul"]["result"]["cycles"] == min(r["result"]["cycles"] for r in records)


def test_pareto_front_keeps_co_equal_configs():
    def rec(name: str, cycles: int, energy: float) -> dict:
        return {
            "status": "ok",
            "point": {"workload": "w", "variant": "dmt", "overrides": {"x": name}},
            "result": {"cycles": cycles, "energy_pj": energy, "counters": {}},
        }

    records = [
        rec("a", 100, 5.0),
        rec("b", 100, 5.0),  # co-equal with a: both non-dominated
        rec("c", 100, 6.0),  # dominated by a (same cycles, more energy)
        rec("d", 120, 3.0),  # on the frontier
        rec("e", 130, 3.0),  # dominated by d (same energy, more cycles)
    ]
    front = pareto_front(records)
    assert [r["point"]["overrides"]["x"] for r in front] == ["a", "b", "d"]


def test_multicore_point_records_core_provenance(tmp_path):
    spec = CampaignSpec(
        name="cores",
        workloads=("matrixMul",),
        variants=("stream",),
        params={"matrixMul": {"dim": 8}},
        grid=(("cores", (2,)),),
    )
    (outcome,) = run_campaign(spec, jobs=1, cache_dir=tmp_path).outcomes
    counters = outcome.record["result"]["counters"]
    assert counters["cores"] == 2
    assert counters["sharded_cores"] == 2
    config = SystemConfig.from_dict(json.loads(json.dumps(outcome.point.config_dict())))
    assert config.cores == 2
