"""Result cache: content addressing, persistence, corrupt-line tolerance."""

import json

from repro.explore.cache import ResultCache
from repro.explore.spec import CACHE_SCHEMA_VERSION


def _record(cycles: int) -> dict:
    return {"status": "ok", "result": {"cycles": cycles}, "point": {}}


def test_put_then_get_survives_reload(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.put("k1", _record(10))
    cache.put("k2", _record(20))
    fresh = ResultCache(tmp_path / "cache").load()
    assert len(fresh) == 2
    assert fresh.get("k1")["result"]["cycles"] == 10
    assert "k2" in fresh and "k3" not in fresh


def test_truncated_final_line_is_skipped(tmp_path):
    """A killed campaign leaves a partial last line; resume must shrug it off."""
    cache = ResultCache(tmp_path)
    cache.put("complete", _record(1))
    with cache.path.open("a", encoding="utf-8") as handle:
        handle.write('{"schema": %d, "key": "partial", "rec' % CACHE_SCHEMA_VERSION)
    reloaded = ResultCache(tmp_path).load()
    assert "complete" in reloaded
    assert "partial" not in reloaded
    # Appending after the fragment starts a fresh line: nothing is lost.
    reloaded.put("after", _record(2))
    final = ResultCache(tmp_path).load()
    assert "complete" in final and "after" in final
    assert "partial" not in final


def test_schema_mismatch_and_garbage_lines_ignored(tmp_path):
    cache = ResultCache(tmp_path)
    cache.root.mkdir(parents=True, exist_ok=True)
    with cache.path.open("w", encoding="utf-8") as handle:
        handle.write("not json at all\n")
        handle.write(json.dumps({"schema": 999, "key": "old", "record": {}}) + "\n")
        handle.write(json.dumps({"key": "incomplete"}) + "\n")
        handle.write(
            json.dumps({"schema": CACHE_SCHEMA_VERSION, "key": "good", "record": _record(5)})
            + "\n"
        )
    loaded = ResultCache(tmp_path).load()
    assert list(loaded.keys()) == ["good"]


def test_last_writer_wins_on_duplicate_keys(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("k", _record(1))
    cache.put("k", _record(2))
    assert ResultCache(tmp_path).load().get("k")["result"]["cycles"] == 2
    assert len(ResultCache(tmp_path).load()) == 1


def test_missing_cache_dir_is_empty_not_an_error(tmp_path):
    cache = ResultCache(tmp_path / "never-created").load()
    assert len(cache) == 0
    assert cache.get("anything") is None
