"""Tests for the compiler passes."""

import pytest

from repro.compiler.passes.base import PassManager
from repro.compiler.passes.cascade import CascadeElevatorsPass, cascade_plan, split_delta
from repro.compiler.passes.constant_fold import ConstantFoldPass
from repro.compiler.passes.dce import DeadCodeEliminationPass
from repro.compiler.passes.eldst_buffer import EldstBufferPass, external_buffer_nodes
from repro.compiler.passes.replicate import ReplicatePass, max_replicas
from repro.config.system import default_system_config
from repro.errors import CompilationError
from repro.graph.opcodes import Opcode
from repro.kernel.builder import KernelBuilder


def _config():
    return default_system_config()


def _simple_kernel(delta=-1):
    b = KernelBuilder("k", 64)
    b.global_array("in_data", 64)
    b.global_array("out", 64)
    tid = b.thread_idx_x()
    v = b.load("in_data", tid)
    b.tag_value("v", v)
    remote = b.from_thread_or_const("v", delta, 0.0)
    b.store("out", tid, remote + (v * 1.0))
    return b.finish()


# ------------------------------------------------------------- constant fold
def test_constant_fold_collapses_constant_expressions():
    b = KernelBuilder("k", 8)
    b.global_array("out", 8)
    tid = b.thread_idx_x()
    value = (b.const(2) + b.const(3)) * b.const(4)
    b.store("out", tid, value)
    graph = b.finish()
    result = ConstantFoldPass().run(graph, _config())
    assert result.metrics["folded_nodes"] == 2
    consts = [n.param("value") for n in graph.nodes_with_opcode(Opcode.CONST)]
    assert 20 in consts


# ----------------------------------------------------------------------- DCE
def test_dce_removes_unused_subgraphs():
    b = KernelBuilder("k", 8)
    b.global_array("out", 8)
    tid = b.thread_idx_x()
    dead = tid * 17 + 3          # never stored
    live = tid + 1
    b.store("out", tid, live)
    graph = b.finish()
    before = len(graph)
    result = DeadCodeEliminationPass().run(graph, _config())
    assert result.metrics["removed_nodes"] >= 2
    assert len(graph) < before
    assert dead is not None


# ------------------------------------------------------------------- cascade
def test_split_delta_matches_figure_10a():
    assert split_delta(18, 16) == [16, 2]
    assert split_delta(-18, 16) == [-16, -2]
    assert split_delta(16, 16) == [16]
    assert cascade_plan(33, 16) == 3


def test_split_delta_rejects_zero():
    with pytest.raises(CompilationError):
        split_delta(0, 16)


def test_cascade_pass_splits_long_distances():
    graph = _simple_kernel(delta=-20)  # hardware shift +20 > 16-entry buffer
    result = CascadeElevatorsPass().run(graph, _config())
    assert result.metrics["cascaded_calls"] == 1
    elevators = graph.nodes_with_opcode(Opcode.ELEVATOR)
    assert len(elevators) == 2
    assert sum(int(n.param("delta")) for n in elevators) == 20


def test_cascade_pass_leaves_short_distances_alone():
    graph = _simple_kernel(delta=-4)
    result = CascadeElevatorsPass().run(graph, _config())
    assert not result.changed
    assert len(graph.nodes_with_opcode(Opcode.ELEVATOR)) == 1


def test_cascade_pass_spills_when_out_of_control_units():
    graph = _simple_kernel(delta=-1000)  # would need ~63 elevator nodes
    result = CascadeElevatorsPass().run(graph, _config())
    assert result.metrics.get("spilled_transfers") == 1
    elevator = graph.nodes_with_opcode(Opcode.ELEVATOR)[0]
    assert elevator.param("spilled") is True


# -------------------------------------------------------------- eLDST buffer
def test_external_buffer_nodes_formula():
    assert external_buffer_nodes(8, 16) == 0
    assert external_buffer_nodes(17, 16) == 1
    assert external_buffer_nodes(48, 16) == 2


def test_eldst_buffer_pass_plans_loops():
    b = KernelBuilder("k", (32, 2))
    b.global_array("a", 64)
    b.global_array("out", 64)
    tid = b.thread_idx_linear()
    pred = b.thread_idx_y().eq(0)
    val = b.from_thread_or_mem("a", tid, pred, src_offset=(0, -1))  # distance 32
    b.store("out", tid, val)
    graph = b.finish()
    result = EldstBufferPass().run(graph, _config())
    assert result.metrics.get("buffered_forwards") == 1
    node = graph.nodes_with_opcode(Opcode.ELDST)[0]
    assert node.param("external_buffer_nodes") == 1


# ----------------------------------------------------------------- replicate
def test_max_replicas_respects_grid_capacity():
    graph = _simple_kernel()
    replicas = max_replicas(graph, _config())
    assert 1 <= replicas <= _config().max_graph_replicas


def test_replicate_pass_records_metadata():
    graph = _simple_kernel()
    result = ReplicatePass().run(graph, _config())
    assert graph.metadata["replicas"] == result.metrics["replicas"]


# -------------------------------------------------------------- pass manager
def test_pass_manager_runs_and_validates():
    graph = _simple_kernel()
    manager = PassManager([ConstantFoldPass(), DeadCodeEliminationPass(), ReplicatePass()])
    results = manager.run(graph, _config())
    assert len(results) == 3
    assert "replicate" in manager.summary()
