"""Semantic equivalence of compiler legalisation.

The cascade pass (Fig. 10a) must not change what a kernel computes — only
how the communication is realised on the hardware.  These tests run the
same kernel with and without legalisation (by varying the token-buffer
size) and require identical results, including across the spill fallback.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.pipeline import compile_kernel
from repro.config.system import SystemConfig, TokenBufferConfig
from repro.graph.opcodes import Opcode
from repro.kernel.builder import KernelBuilder
from repro.sim import simulate
from repro.sim.functional import run_functional

from repro.sim.launch import KernelLaunch

pytestmark = pytest.mark.slow


def _shift_kernel(n: int, distance: int):
    builder = KernelBuilder(f"shift_{distance}", n)
    builder.global_array("in_data", n)
    builder.global_array("out", n)
    tid = builder.thread_idx_x()
    value = builder.load("in_data", tid)
    builder.tag_value("v", value)
    remote = builder.from_thread_or_const("v", -distance, 0.0)
    builder.store("out", tid, remote)
    return builder.finish()


def _expected(data: np.ndarray, distance: int) -> np.ndarray:
    out = np.zeros_like(data)
    out[distance:] = data[:-distance]
    return out


@pytest.mark.parametrize("buffer_entries", [4, 8, 16, 64])
def test_cascaded_graphs_compute_the_same_result(buffer_entries):
    n, distance = 96, 30
    config = SystemConfig(token_buffer=TokenBufferConfig(entries=buffer_entries)).validate()
    graph = _shift_kernel(n, distance)
    compiled = compile_kernel(graph, config)
    data = np.arange(float(n)) + 1
    launch = KernelLaunch(graph, {"in_data": data})
    result = simulate(compiled, launch)
    np.testing.assert_allclose(result.array("out"), _expected(data, distance))
    expected_nodes = -(-distance // buffer_entries)  # ceil
    assert len(compiled.elevator_nodes()) == expected_nodes


def test_spilled_transfer_still_computes_the_same_result():
    n, distance = 64, 40
    # A 2-entry buffer would need 20 cascaded nodes; only 16 control units
    # exist, so the transfer is spilled through the Live Value Cache.
    config = SystemConfig(token_buffer=TokenBufferConfig(entries=2)).validate()
    graph = _shift_kernel(n, distance)
    compiled = compile_kernel(graph, config)
    assert compiled.spilled_nodes()
    data = np.arange(float(n))
    result = simulate(compiled, KernelLaunch(graph, {"in_data": data}))
    np.testing.assert_allclose(result.array("out"), _expected(data, distance))
    assert result.stats.spilled_tokens > 0
    assert result.stats.lvc_accesses > 0


@settings(deadline=None, max_examples=15)
@given(st.integers(2, 64), st.integers(1, 60))
def test_functional_result_is_invariant_under_compilation(n, distance):
    distance = max(1, distance % n) if n > 1 else 1
    graph = _shift_kernel(n, distance)
    data = np.arange(float(n)) * 2 + 1
    launch = KernelLaunch(graph, {"in_data": data})
    baseline = run_functional(launch).array("out").copy()

    config = SystemConfig(token_buffer=TokenBufferConfig(entries=4)).validate()
    compiled = compile_kernel(graph, config)
    legalised_launch = KernelLaunch(compiled.graph, {"in_data": data})
    legalised = run_functional(legalised_launch).array("out")
    np.testing.assert_allclose(legalised, baseline)
    np.testing.assert_allclose(baseline, _expected(data, distance))


def test_cascade_preserves_elevator_count_in_the_compiled_report():
    graph = _shift_kernel(64, 34)
    compiled = compile_kernel(graph)
    cascades = [n for n in compiled.elevator_nodes() if n.param("cascade_stage") is not None]
    assert len(cascades) == len(compiled.elevator_nodes()) == 3
    assert all(n.opcode is Opcode.ELEVATOR for n in cascades)
