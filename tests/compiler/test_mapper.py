"""Tests for placement and routing."""

from repro.arch.grid import PhysicalGrid
from repro.compiler.mapper.placement import AnnealingRefiner, GreedyPlacer, place_graph
from repro.compiler.mapper.routing import route_placement
from repro.config.system import CgraGridConfig, NocConfig
from repro.graph.opcodes import UnitClass
from repro.workloads.convolution import ConvolutionWorkload


def _graph():
    return ConvolutionWorkload().build_dmt({"n": 64, "k0": 0.25, "k1": 0.5, "k2": 0.25})


def test_greedy_placement_respects_unit_classes():
    graph = _graph()
    grid = PhysicalGrid(CgraGridConfig())
    placement = GreedyPlacer(grid).place(graph)
    for node in graph.nodes:
        if node.unit_class is UnitClass.SOURCE:
            assert placement.unit_of(node.node_id) is None
            continue
        unit_id = placement.unit_of(node.node_id)
        unit = grid.unit(unit_id)
        compatible = {u.unit_id for u in grid.units_compatible_with(node.unit_class)}
        assert unit.unit_id in compatible


def test_annealing_does_not_increase_wire_length():
    graph = _graph()
    grid = PhysicalGrid(CgraGridConfig())
    seed = GreedyPlacer(grid).place(graph)
    before = seed.wire_length()
    refined = AnnealingRefiner(iterations=800, seed=1).refine(seed)
    assert refined.wire_length() <= before * 1.25  # annealing may wander slightly


def test_placement_is_deterministic_for_fixed_seed():
    graph = _graph()
    grid = PhysicalGrid(CgraGridConfig())
    a = place_graph(graph, grid, anneal_iterations=300, seed=7)
    b = place_graph(graph.copy(), grid, anneal_iterations=300, seed=7)
    assert a.node_to_unit == b.node_to_unit


def test_routing_produces_hops_for_every_placed_edge():
    graph = _graph()
    grid = PhysicalGrid(CgraGridConfig())
    placement = place_graph(graph, grid, anneal_iterations=200)
    mapping = route_placement(placement, NocConfig())
    assert len(mapping.edge_hops) == graph.num_edges()
    assert mapping.total_hops >= 0
    assert mapping.mean_hops >= 0.0
    # hop count between two placed nodes equals their Manhattan distance
    for edge in graph.edges():
        src_unit = placement.unit_of(edge.src)
        dst_unit = placement.unit_of(edge.dst)
        if src_unit is None or dst_unit is None:
            continue
        assert mapping.hops_for_edge(edge) == grid.distance(src_unit, dst_unit)


def test_oversubscribed_graph_shares_units():
    # A graph with more LDST-class nodes than physical LDST units.
    from repro.workloads.matmul import MatmulWorkload

    graph = MatmulWorkload().build_mt({"dim": 16})
    grid = PhysicalGrid(CgraGridConfig())
    placement = place_graph(graph, grid, anneal_iterations=100)
    assert placement.shared_units()  # at least one unit hosts several nodes
