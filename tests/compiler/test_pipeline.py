"""Tests for the end-to-end compilation pipeline."""

from repro.compiler.pipeline import CompilerOptions, compile_kernel
from repro.config.system import default_system_config
from repro.workloads.matmul import MatmulWorkload
from repro.workloads.scan import ScanWorkload


def test_compile_does_not_mutate_the_input_graph():
    graph = ScanWorkload().build_dmt({"n": 32})
    before = len(graph)
    compile_kernel(graph)
    assert len(graph) == before


def test_compiled_kernel_reports_interthread_usage():
    compiled = compile_kernel(ScanWorkload().build_dmt({"n": 32}))
    assert compiled.uses_inter_thread_communication()
    assert not compiled.uses_barriers()
    assert compiled.replicas >= 1
    assert "elevator" in compiled.report()


def test_mt_variant_reports_barriers():
    compiled = compile_kernel(ScanWorkload().build_mt({"n": 32}))
    assert compiled.uses_barriers()
    assert not compiled.uses_inter_thread_communication()


def test_mapping_can_be_disabled():
    options = CompilerOptions(map_to_grid=False)
    compiled = compile_kernel(ScanWorkload().build_dmt({"n": 32}), options=options)
    assert compiled.mapping is None
    assert compiled.edge_hops(0, 1) == 0


def test_matmul_eldst_nodes_survive_compilation():
    compiled = compile_kernel(MatmulWorkload().build_dmt({"dim": 8}))
    assert len(compiled.eldst_nodes()) == 2 * 8
    assert compiled.num_threads == 64
    assert compiled.block_dim == (8, 8)


def test_pass_results_are_recorded():
    compiled = compile_kernel(ScanWorkload().build_dmt({"n": 32}),
                              config=default_system_config())
    names = [r.pass_name for r in compiled.pass_results]
    assert "cascade-elevators" in names
    assert "replicate" in names
