"""Tests for the cycle-level CGRA simulator."""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_kernel
from repro.config.system import default_system_config
from repro.errors import DeadlockError
from repro.kernel.builder import KernelBuilder
from repro.sim import simulate
from repro.sim.cycle import CycleSimulator
from repro.sim.functional import run_functional
from repro.sim.launch import KernelLaunch
from repro.workloads.convolution import ConvolutionWorkload
from repro.workloads.reduce import ReduceWorkload


def test_cycle_results_match_functional(scan_launch):
    launch, data = scan_launch
    compiled = compile_kernel(launch.graph)
    cycle = simulate(compiled, launch)
    functional = run_functional(launch)
    np.testing.assert_allclose(cycle.array("prefix"), functional.array("prefix"))
    assert cycle.cycles > 0


def test_stats_reflect_interthread_communication(scan_launch):
    launch, _ = scan_launch
    compiled = compile_kernel(launch.graph)
    result = simulate(compiled, launch)
    n = launch.num_threads
    assert result.stats.elevator_retags == n - 1
    assert result.stats.elevator_constants == 1
    assert result.stats.global_loads == n
    assert result.stats.global_stores == n
    assert result.stats.scratch_loads == 0
    assert result.stats.barrier_arrivals == 0


def test_mt_variant_uses_scratchpad_and_barriers():
    workload = ConvolutionWorkload()
    params = {"n": 64, "k0": 0.25, "k1": 0.5, "k2": 0.25}
    prepared = workload.prepare(params)
    launch = prepared.launch("mt")
    compiled = compile_kernel(launch.graph)
    result = simulate(compiled, launch)
    assert result.stats.barrier_arrivals == 64
    assert result.stats.scratch_stores == 64
    assert result.stats.scratch_loads == 3 * 64
    prepared.check_outputs({"out": result.array("out")})


def test_dmt_variant_avoids_scratchpad():
    workload = ConvolutionWorkload()
    params = {"n": 64, "k0": 0.25, "k1": 0.5, "k2": 0.25}
    prepared = workload.prepare(params)
    launch = prepared.launch("dmt")
    compiled = compile_kernel(launch.graph)
    result = simulate(compiled, launch)
    assert result.stats.scratch_loads == 0
    assert result.stats.barrier_arrivals == 0
    assert result.stats.elevator_retags > 0
    prepared.check_outputs({"out": result.array("out")})


def test_windowed_reduce_runs_on_cycle_simulator():
    workload = ReduceWorkload()
    params = {"n": 64, "window": 16}
    prepared = workload.prepare(params)
    launch = prepared.launch("dmt")
    result = simulate(compile_kernel(launch.graph), launch)
    prepared.check_outputs({"partials": result.array("partials")})


def test_memory_hierarchy_counters_are_exposed():
    workload = ConvolutionWorkload()
    prepared = workload.prepare({"n": 64, "k0": 0.25, "k1": 0.5, "k2": 0.25})
    launch = prepared.launch("dmt")
    result = simulate(compile_kernel(launch.graph), launch)
    counters = result.counters()
    assert counters["dram_reads"] > 0
    assert counters["l1_read_misses"] > 0


def test_deadlock_detection_reports_unretired_threads():
    n = 4
    b = KernelBuilder("deadlock", n)
    b.global_array("out", n)
    tid = b.thread_idx_x()
    fwd = b.from_thread_or_const("y", +1, 0.0)
    bwd = b.from_thread_or_const("y", -1, 0.0)
    val = fwd + bwd
    b.tag_value("y", val)
    b.store("out", tid, val)
    graph = b.finish()
    compiled = compile_kernel(graph)
    with pytest.raises(DeadlockError):
        CycleSimulator(compiled, KernelLaunch(graph, {}), max_cycles=50_000).run()


def test_noc_hops_match_mapped_route_lengths():
    """noc_hops counts each token's true mapped hop count exactly once."""
    n = 8
    b = KernelBuilder("hops", n)
    b.global_array("in_data", n)
    b.global_array("out", n)
    tid = b.thread_idx_x()
    b.store("out", tid, -b.load("in_data", tid))  # load -> neg -> store
    graph = b.finish()
    compiled = compile_kernel(graph)
    launch = KernelLaunch(graph, {"in_data": np.arange(float(n))})
    result = simulate(compiled, launch, engine="event")
    expected_hops_per_thread = sum(
        compiled.edge_hops(edge.src, edge.dst) for edge in compiled.graph.edges()
    )
    assert result.stats.noc_hops == n * expected_hops_per_thread


def test_noc_hops_independent_of_latency_parameters():
    """Hop counts must not scale with hop_latency or injection_latency."""
    from dataclasses import replace

    from repro.config.system import NocConfig

    n = 8
    results = []
    for noc in (
        NocConfig(hop_latency=1, injection_latency=1),
        NocConfig(hop_latency=3, injection_latency=0),
        NocConfig(hop_latency=1, injection_latency=4),
    ):
        b = KernelBuilder("hops_cfg", n)
        b.global_array("in_data", n)
        b.global_array("out", n)
        tid = b.thread_idx_x()
        b.store("out", tid, -b.load("in_data", tid))
        graph = b.finish()
        config = replace(default_system_config(), noc=noc)
        compiled = compile_kernel(graph, config)
        launch = KernelLaunch(graph, {"in_data": np.arange(float(n))})
        result = simulate(compiled, launch, engine="event")
        expected = n * sum(
            compiled.edge_hops(e.src, e.dst) for e in compiled.graph.edges()
        )
        assert result.stats.noc_hops == expected
        results.append(result.stats.noc_hops)
    # Same seed, same placement: identical hop counts across NoC timings.
    assert len(set(results)) == 1


def test_replicas_increase_injection_rate():
    config = default_system_config()
    workload = ConvolutionWorkload()
    prepared = workload.prepare({"n": 128, "k0": 0.25, "k1": 0.5, "k2": 0.25})
    launch = prepared.launch("dmt")
    compiled = compile_kernel(launch.graph, config)
    assert compiled.replicas > 1
