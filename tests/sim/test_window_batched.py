"""Tests for the window-batched engine: communicating kernels as vectors.

The acceptance contract mirrors the batched engine's: bit-identical
outputs and identical operation counters against the event engine, with
the cycle count and cache counters produced by the analytic replay.
"""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_kernel
from repro.errors import SimulationError
from repro.kernel.builder import KernelBuilder
from repro.sim import simulate
from repro.sim.cycle import resolve_engine
from repro.sim.launch import KernelLaunch
from repro.sim.window_batched import WindowBatchedSimulator, run_window_batched
from repro.workloads.registry import get_workload

#: Counters the acceptance criteria require to be equal between engines.
OP_COUNTERS = ("alu_ops", "fpu_ops", "global_loads", "global_stores")


def _prepared(name, variant, params):
    workload = get_workload(name)
    prepared = workload.prepare(params)
    launch = prepared.launch(variant)
    return prepared, compile_kernel(launch.graph), launch


def _shift_launch(n=24):
    """Feed-forward elevator chain: out[t] = x[t-1], thread 0 gets 99."""
    b = KernelBuilder("shift", n)
    b.global_array("x", n)
    b.global_array("out", n)
    tid = b.thread_idx_x()
    value = b.load("x", tid)
    b.tag_value("v", value)
    recv = b.from_thread_or_const("v", -1, 99.0)
    b.store("out", tid, recv)
    graph = b.finish()
    return KernelLaunch(graph, {"x": np.arange(n) * 1.25 + 3.0})


@pytest.mark.parametrize(
    "name,variant,params",
    [
        ("matrixMul", "dmt", {"dim": 6}),
        ("matrixMul", "dmt_win", {"dim": 6}),
        ("reduce", "dmt", {"n": 48, "window": 8}),
    ],
    ids=["matmul-dmt", "matmul-dmt_win", "reduce-dmt"],
)
def test_window_batched_matches_event_bitwise(name, variant, params):
    prepared, compiled, launch = _prepared(name, variant, params)
    event = simulate(compiled, launch, engine="event")
    window = simulate(compiled, launch, engine="window-batched")
    assert window.engine == "window-batched"
    assert event.engine == "event"
    for array in prepared.expected:
        assert np.array_equal(event.array(array), window.array(array)), array
    prepared.check_outputs({a: window.array(a) for a in prepared.expected})
    event_counters = event.stats.as_dict()
    window_counters = window.stats.as_dict()
    for counter in event_counters:
        if counter == "engine":  # provenance differs by design
            continue
        assert event_counters[counter] == window_counters[counter], counter


def test_auto_engine_resolves_window_batched_for_feedforward_traffic():
    _, compiled, _ = _prepared("matrixMul", "dmt_win", {"dim": 4})
    assert resolve_engine("auto", compiled.graph) == "window-batched"


def test_window_batched_rejects_interthread_recurrences(scan_launch):
    launch, _ = scan_launch  # prefix sum: cyclic elevator chain
    compiled = compile_kernel(launch.graph)
    with pytest.raises(SimulationError, match="recurrence|cycle"):
        WindowBatchedSimulator(compiled, launch)


def test_forced_window_batched_degrades_to_capable_engine(scan_launch):
    launch, data = scan_launch
    compiled = compile_kernel(launch.graph)
    result = simulate(compiled, launch, engine="window-batched")
    assert result.engine == "event"  # recurrence: only the event engine can
    np.testing.assert_allclose(result.array("prefix"), np.cumsum(data))

    stream_prepared = get_workload("matrixMul").prepare({"dim": 4})
    stream_launch = stream_prepared.launch("stream")
    stream = simulate(
        compile_kernel(stream_launch.graph), stream_launch, engine="window-batched"
    )
    assert stream.engine == "batched"  # no inter-thread traffic to window


def test_elevator_boundary_threads_fall_back_to_the_constant():
    launch = _shift_launch()
    compiled = compile_kernel(launch.graph)
    event = simulate(compiled, _shift_launch(), engine="event")
    window = run_window_batched(compiled, _shift_launch())
    assert np.array_equal(event.array("out"), window.array("out"))
    assert window.array("out")[0] == 99.0
    assert window.stats.extra["engine"] == "window-batched"
    assert window.stats.elevator_constants == event.stats.elevator_constants == 1
    assert window.stats.elevator_retags == launch.num_threads - 1


def test_window_batched_shards_across_cores():
    prepared, compiled, launch = _prepared("matrixMul", "dmt_win", {"dim": 8})
    single = simulate(compiled, launch, engine="window-batched")
    multi = simulate(compiled, prepared.launch("dmt_win"), cores=4)
    assert multi.cores == 4
    assert multi.engine == "window-batched"
    assert np.array_equal(single.array("c"), multi.array("c"))
    prepared.check_outputs({"c": multi.array("c")})
    single_counters = single.stats.as_dict()
    multi_counters = multi.stats.as_dict()
    for counter in OP_COUNTERS:
        assert multi_counters[counter] == single_counters[counter], counter
