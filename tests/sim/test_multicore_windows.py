"""Window-aligned multi-core sharding of communicating kernels."""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_kernel
from repro.errors import SimulationError
from repro.graph.interthread import subset_closed_under_window, thread_subset_problem
from repro.harness.experiments import run_workload
from repro.kernel.builder import KernelBuilder
from repro.sim import simulate
from repro.sim.cycle import CycleSimulator
from repro.sim.launch import KernelLaunch
from repro.sim.multicore import plan_shards, run_multicore, shard_threads
from repro.workloads.registry import get_workload

#: Counters that must be equal between a sharded and a single-core run.
OP_COUNTERS = (
    "alu_ops",
    "fpu_ops",
    "global_loads",
    "global_stores",
    "elevator_retags",
    "elevator_constants",
    "eldst_forwards",
    "eldst_memory_loads",
    "tokens_sent",
    "noc_hops",
)


def _windowed_elevator_launch(n=64, window=8, distance=1):
    """A windowed neighbour-sum kernel (one ELEVATOR per thread pair)."""
    b = KernelBuilder("windowed_sum", n)
    b.global_array("x", n)
    b.global_array("out", n)
    tid = b.thread_idx_x()
    value = b.load("x", tid)
    b.tag_value("v", value)
    left = b.from_thread_or_const("v", -distance, 0.0, window=window)
    b.store("out", tid, value + left)
    graph = b.finish()
    data = np.arange(1.0, n + 1.0)
    return KernelLaunch(graph, {"x": data}), data


def _mixed_window_launch(n=48):
    """Two elevators with windows 4 and 6 — the legal cut is their LCM, 12."""
    b = KernelBuilder("mixed_windows", n)
    b.global_array("x", n)
    b.global_array("out", n)
    tid = b.thread_idx_x()
    value = b.load("x", tid)
    b.tag_value("v", value)
    a = b.from_thread_or_const("v", -1, 0.0, window=4)
    c = b.from_thread_or_const("v", -1, 0.0, window=6)
    b.store("out", tid, value + a + c)
    graph = b.finish()
    return KernelLaunch(graph, {"x": np.arange(1.0, n + 1.0)})


def _barrier_only_launch(n=32, window=None):
    """A barrier with no scratchpad traffic: values just pass through."""
    b = KernelBuilder("barrier_only", n)
    b.global_array("x", n)
    b.global_array("out", n)
    tid = b.thread_idx_x()
    value = b.load("x", tid)
    gated = b.barrier(value, window=window)
    b.store("out", tid, gated * 2.0)
    graph = b.finish()
    data = np.arange(1.0, n + 1.0)
    return KernelLaunch(graph, {"x": data}), data


# ------------------------------------------------------------------ planner
def test_plan_requires_bounded_windows(scan_launch):
    launch, _ = scan_launch
    compiled = compile_kernel(launch.graph)
    plan = plan_shards(compiled, cores=4)
    assert not plan.sharded
    assert "no bounded transmission window" in plan.fallback_reason
    assert plan.fallback_code == "RA030"


def test_plan_aligns_block_to_window_lcm():
    launch = _mixed_window_launch(n=48)
    compiled = compile_kernel(launch.graph)
    plan = plan_shards(compiled, cores=2)
    assert plan.sharded
    assert plan.window_lcm == 12
    assert plan.block % 12 == 0


def test_plan_rounds_requested_block_up_to_the_window():
    """A window larger than the requested block forces the block up."""
    launch, _ = _windowed_elevator_launch(n=64, window=16)
    compiled = compile_kernel(launch.graph)
    plan = plan_shards(compiled, cores=2, block=3)
    assert plan.sharded
    assert plan.block == 16
    for shard in shard_threads(64, 2, plan.block):
        assert subset_closed_under_window(shard, 16, 64)


def test_plan_falls_back_when_window_spans_the_block():
    launch, _ = _windowed_elevator_launch(n=32, window=32)
    compiled = compile_kernel(launch.graph)
    plan = plan_shards(compiled, cores=4)
    assert not plan.sharded
    assert "span the whole block" in plan.fallback_reason
    assert plan.fallback_code == "RA032"


def test_plan_single_core_never_reports_fallback():
    launch, _ = _windowed_elevator_launch(n=32, window=32)
    compiled = compile_kernel(launch.graph)
    plan = plan_shards(compiled, cores=1)
    assert plan.fallback_reason is None
    assert plan.fallback_code is None
    assert not plan.sharded


# ------------------------------------------------------------- shard_threads
def test_shard_threads_more_cores_than_threads():
    shards = shard_threads(3, cores=8, block=1)
    assert len(shards) == 8
    assert [s.tolist() for s in shards[:3]] == [[0], [1], [2]]
    assert all(s.size == 0 for s in shards[3:])


def test_multicore_skips_empty_shards():
    launch, data = _windowed_elevator_launch(n=16, window=8)
    compiled = compile_kernel(launch.graph)
    result = run_multicore(compiled, launch, cores=8)
    # Only two windows exist, so only two cores get work.
    assert result.cores == 2
    assert result.stats.threads == 16


# ------------------------------------------------------- sharded equivalence
def test_windowed_elevator_shards_bit_identically():
    launch, _ = _windowed_elevator_launch(n=64, window=8)
    compiled = compile_kernel(launch.graph)
    single = simulate(compiled, _windowed_elevator_launch(n=64, window=8)[0])
    multi = simulate(compiled, launch, cores=4)
    assert multi.cores == 4
    assert "shard_fallback_reason" not in multi.stats.extra
    assert np.array_equal(single.array("out"), multi.array("out"))
    single_counters = single.stats.as_dict()
    multi_counters = multi.stats.as_dict()
    for counter in OP_COUNTERS:
        assert multi_counters[counter] == single_counters[counter], counter


def test_reduce_dmt_shards_on_four_cores():
    """The acceptance scenario: an ELEVATOR workload on SystemConfig(cores=4)
    without fallback, bit-identical to the single-core run."""
    workload = get_workload("reduce")
    prepared = workload.prepare({"n": 256, "window": 64})
    compiled = compile_kernel(prepared.launch("dmt").graph)
    single = simulate(compiled, prepared.launch("dmt"), cores=1)
    multi = simulate(compiled, prepared.launch("dmt"), cores=4)
    assert multi.cores == 4
    assert "shard_fallback_reason" not in multi.stats.extra
    assert multi.stats.extra["sharded_cores"] == 4
    assert np.array_equal(single.array("partials"), multi.array("partials"))
    prepared.check_outputs({"partials": multi.array("partials")})
    single_counters = single.stats.as_dict()
    multi_counters = multi.stats.as_dict()
    for counter in OP_COUNTERS:
        assert multi_counters[counter] == single_counters[counter], counter


def test_matmul_windowed_dmt_shards_on_four_cores():
    workload = get_workload("matrixMul")
    prepared = workload.prepare({"dim": 8})
    compiled = compile_kernel(prepared.launch("dmt_win").graph)
    single = simulate(compiled, prepared.launch("dmt_win"), cores=1)
    multi = simulate(compiled, prepared.launch("dmt_win"), cores=4)
    assert multi.cores == 4
    assert "shard_fallback_reason" not in multi.stats.extra
    assert np.array_equal(single.array("c"), multi.array("c"))
    prepared.check_outputs({"c": multi.array("c")})
    single_counters = single.stats.as_dict()
    multi_counters = multi.stats.as_dict()
    for counter in OP_COUNTERS:
        assert multi_counters[counter] == single_counters[counter], counter
    # Row forwarding still eliminates the redundant A loads: dim^3 B loads
    # plus dim^2 forwarded A loads, versus 2*dim^3 for the streaming kernel.
    dim = 8
    assert single_counters["global_loads"] == dim**3 + dim**2


def test_matmul_full_dmt_still_falls_back():
    """The fully-forwarded matmul's column chains span the block; the
    planner must refuse to cut it and record why."""
    workload = get_workload("matrixMul")
    prepared = workload.prepare({"dim": 8})
    compiled = compile_kernel(prepared.launch("dmt").graph)
    result = simulate(compiled, prepared.launch("dmt"), cores=4)
    assert "shard_fallback_reason" in result.stats.extra
    assert result.stats.extra["shard_fallback_code"] == "RA030"
    prepared.check_outputs({"c": result.array("c")})


# ------------------------------------------------------------- barrier paths
def test_barrier_only_graph_shards_with_per_shard_barrier():
    launch, data = _barrier_only_launch(n=32)
    compiled = compile_kernel(launch.graph)
    single = simulate(compiled, _barrier_only_launch(n=32)[0])
    multi = simulate(compiled, launch, cores=4)
    assert multi.cores == 4
    assert "shard_fallback_reason" not in multi.stats.extra
    assert np.array_equal(single.array("out"), multi.array("out"))
    np.testing.assert_allclose(multi.array("out"), data * 2.0)
    assert multi.stats.barrier_arrivals == single.stats.barrier_arrivals == 32


def test_windowed_barrier_releases_groups_independently():
    whole, _ = _barrier_only_launch(n=32, window=None)
    windowed, data = _barrier_only_launch(n=32, window=8)
    whole_result = simulate(compile_kernel(whole.graph), whole)
    win_result = simulate(compile_kernel(windowed.graph), windowed)
    np.testing.assert_allclose(win_result.array("out"), data * 2.0)
    # Each group of 8 releases as soon as it completes, so threads wait
    # (strictly) less than behind one whole-block barrier.
    assert win_result.stats.barrier_wait_cycles < whole_result.stats.barrier_wait_cycles


def test_scratch_coupled_barrier_falls_back():
    workload = get_workload("reduce")
    prepared = workload.prepare({"n": 256, "window": 64})
    compiled = compile_kernel(prepared.launch("mt").graph)
    result = simulate(compiled, prepared.launch("mt"), cores=4)
    assert "scratchpad" in result.stats.extra["shard_fallback_reason"]
    assert result.stats.extra["shard_fallback_code"] == "RA031"
    prepared.check_outputs({"partials": result.array("partials")})


# -------------------------------------------------------------- subset rules
def test_misaligned_thread_subset_is_rejected():
    launch, _ = _windowed_elevator_launch(n=64, window=8)
    compiled = compile_kernel(launch.graph)
    with pytest.raises(SimulationError):
        CycleSimulator(compiled, launch, thread_ids=range(12))  # cuts a window


def test_thread_subset_problem_accepts_window_unions():
    launch, _ = _windowed_elevator_launch(n=64, window=8)
    assert thread_subset_problem(launch.graph, list(range(8, 24)), 64) is None
    assert thread_subset_problem(launch.graph, list(range(4, 12)), 64) is not None


def test_simulate_records_fallback_reason(scan_launch):
    launch, data = scan_launch
    compiled = compile_kernel(launch.graph)
    result = simulate(compiled, launch, cores=4)
    assert "no bounded transmission window" in result.stats.extra["shard_fallback_reason"]
    assert result.stats.extra["shard_fallback_code"] == "RA030"
    np.testing.assert_allclose(result.array("prefix"), np.cumsum(data))
    # The reason string must survive the counters() merge for benchmarks.
    assert "shard_fallback_reason" in result.counters()
    assert result.counters()["shard_fallback_code"] == "RA030"


# ------------------------------------------------------------------- harness
def test_harness_runs_windowed_variant_on_four_cores():
    result = run_workload("reduce", "dmt", params={"n": 256, "window": 64}, cores=4)
    assert result.counters["sharded_cores"] == 4
    result_win = run_workload("matrixMul", "dmt_win", params={"dim": 8}, cores=4)
    assert result_win.counters["sharded_cores"] == 4
    assert "shard_fallback_reason" not in result_win.counters
    assert "shard_fallback_code" not in result_win.counters
