"""Tests for the functional dataflow interpreter."""

import numpy as np
import pytest

from repro.errors import DeadlockError
from repro.kernel.builder import KernelBuilder
from repro.sim.functional import run_functional
from repro.sim.launch import KernelLaunch


def test_prefix_sum_recurrence(scan_launch):
    launch, data = scan_launch
    result = run_functional(launch)
    np.testing.assert_allclose(result.array("prefix"), np.cumsum(data))


def test_outputs_are_recorded_per_thread():
    n = 8
    b = KernelBuilder("k", n)
    b.global_array("dummy", n)
    tid = b.thread_idx_x()
    b.store("dummy", tid, tid * 2)
    b.output("double", tid * 2)
    graph = b.finish()
    result = run_functional(KernelLaunch(graph, {}))
    assert result.output("double") == [2 * t for t in range(n)]


def test_two_dimensional_neighbour_exchange():
    dim = 4
    b = KernelBuilder("k", (dim, dim))
    b.global_array("img", dim * dim)
    b.global_array("out", dim * dim)
    tid = b.thread_idx_linear()
    ty = b.thread_idx_y()
    v = b.load("img", tid)
    b.tag_value("v", v)
    north = b.from_thread_or_const("v", (0, -1), -1.0)
    b.store("out", tid, north)
    graph = b.finish()
    img = np.arange(16.0)
    result = run_functional(KernelLaunch(graph, {"img": img}))
    out = result.array("out").reshape(dim, dim)
    np.testing.assert_allclose(out[0], -1.0)        # no northern neighbour
    np.testing.assert_allclose(out[1:], img.reshape(dim, dim)[:-1])
    assert ty is not None


def test_eldst_forwarding_matches_direct_loads():
    dim = 4
    b = KernelBuilder("k", (dim, dim))
    b.global_array("a", dim * dim)
    b.global_array("out", dim * dim)
    tx = b.thread_idx_x()
    ty = b.thread_idx_y()
    tid = b.thread_idx_linear()
    # every thread of a row needs a[row]; only the first column loads it.
    val = b.from_thread_or_mem("a", ty * dim, tx.eq(0), src_offset=(-1, 0))
    b.store("out", tid, val)
    graph = b.finish()
    a = np.arange(16.0) * 3
    result = run_functional(KernelLaunch(graph, {"a": a}))
    expected = np.repeat(a[np.arange(dim) * dim], dim)
    np.testing.assert_allclose(result.array("out"), expected)


def test_barrier_orders_scratch_stores_before_loads():
    n = 8
    b = KernelBuilder("k", n)
    b.global_array("in_data", n)
    b.global_array("out", n)
    b.scratch_array("tile", n)
    tid = b.thread_idx_x()
    v = b.load("in_data", tid)
    bar = b.barrier(b.scratch_store("tile", tid, v))
    reversed_idx = b.const(n - 1) - tid
    b.store("out", tid, b.scratch_load("tile", reversed_idx, order=bar))
    graph = b.finish()
    data = np.arange(float(n))
    result = run_functional(KernelLaunch(graph, {"in_data": data}))
    np.testing.assert_allclose(result.array("out"), data[::-1])


def test_true_cyclic_dependency_is_reported_as_deadlock():
    n = 4
    b = KernelBuilder("k", n)
    b.global_array("out", n)
    tid = b.thread_idx_x()
    # Each thread waits for the *next* thread's value, which itself waits for
    # the one after it: with no constant injection inside the block this can
    # never satisfy the firing rule for a forward-looking chain of length n.
    remote = b.from_thread_or_const("x", +1, 0.0)
    value = remote + 1.0
    b.tag_value("x", value)
    b.store("out", tid, value)
    graph = b.finish()
    # Not a deadlock: the last thread receives the constant.  Make it cyclic
    # by also requiring the previous thread's value.
    result = run_functional(KernelLaunch(graph, {}))
    assert result.array("out")[n - 1] == 1.0

    b2 = KernelBuilder("k2", n)
    b2.global_array("out", n)
    tid2 = b2.thread_idx_x()
    fwd = b2.from_thread_or_const("y", +1, 0.0, window=None)
    bwd = b2.from_thread_or_const("y", -1, 0.0)
    val = fwd + bwd
    b2.tag_value("y", val)
    b2.store("out", tid2, val)
    graph2 = b2.finish()
    with pytest.raises(DeadlockError):
        run_functional(KernelLaunch(graph2, {}))


def test_node_execution_counts():
    n = 8
    b = KernelBuilder("k", n)
    b.global_array("out", n)
    tid = b.thread_idx_x()
    b.store("out", tid, tid + 1)
    result = run_functional(KernelLaunch(b.finish(), {}))
    store = [nid for nid, count in result.node_executions.items() if count == n]
    assert store  # the store executed once per thread
