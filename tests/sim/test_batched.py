"""Tests for the wave-batched engine, engine dispatch and multi-core sharding."""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_kernel
from repro.config.system import default_system_config
from repro.errors import SimulationError
from repro.kernel.builder import KernelBuilder
from repro.sim.batched import BatchedSimulator, run_batched
from repro.sim import simulate
from repro.sim.cycle import resolve_engine
from repro.sim.launch import KernelLaunch
from repro.sim.multicore import run_multicore, shard_threads
from repro.workloads.matmul import MatmulWorkload

#: Counters the acceptance criteria require to be equal between engines.
OP_COUNTERS = ("alu_ops", "fpu_ops", "global_loads", "global_stores")


def _axpy_launch(n=48):
    b = KernelBuilder("axpy", n)
    b.global_array("x", n)
    b.global_array("y", n)
    b.global_array("out", n)
    tid = b.thread_idx_x()
    value = b.fma(b.load("x", tid), b.const(2.5), b.load("y", tid))
    b.store("out", tid, value)
    graph = b.finish()
    inputs = {"x": np.arange(n) * 0.37, "y": np.arange(n) * -1.2 + 0.5}
    return KernelLaunch(graph, inputs)


def test_batched_matches_event_bitwise():
    launch = _axpy_launch()
    compiled = compile_kernel(launch.graph)
    event = simulate(compiled, launch, engine="event")
    batched = simulate(compiled, launch, engine="batched")
    assert np.array_equal(event.array("out"), batched.array("out"))
    event_counters = event.stats.as_dict()
    batched_counters = batched.stats.as_dict()
    for counter in event_counters:
        if counter in ("cycles", "engine"):  # provenance differs by design
            continue
        assert event_counters[counter] == batched_counters[counter], counter
    assert event_counters["engine"] == "event"
    assert batched_counters["engine"] == "batched"
    assert event_counters["cores"] == batched_counters["cores"] == 1


def test_graph_interthread_detection(scan_launch):
    launch, _ = scan_launch
    assert launch.graph.has_interthread()  # prefix sum uses an elevator
    assert not _axpy_launch().graph.has_interthread()


def test_auto_engine_picks_batched_for_interthread_free_graphs(scan_launch):
    launch, _ = scan_launch
    assert resolve_engine("auto", launch.graph) == "event"
    assert resolve_engine("auto", _axpy_launch().graph) == "batched"
    with pytest.raises(SimulationError):
        resolve_engine("warp", launch.graph)


def test_batched_engine_rejects_interthread_graphs(scan_launch):
    launch, _ = scan_launch
    compiled = compile_kernel(launch.graph)
    with pytest.raises(SimulationError):
        BatchedSimulator(compiled, launch)


def test_batched_wave_groups_do_not_change_results():
    launch = _axpy_launch(n=64)
    compiled = compile_kernel(launch.graph)
    whole = run_batched(compiled, launch)
    waved = BatchedSimulator(compiled, _axpy_launch(n=64), wave_group=7).run()
    assert np.array_equal(whole.array("out"), waved.array("out"))
    assert whole.stats.as_dict() == waved.stats.as_dict()


def test_batched_outputs_match_event_outputs():
    n = 16
    b = KernelBuilder("out_kernel", n)
    b.global_array("x", n)
    tid = b.thread_idx_x()
    b.output("doubled", b.load("x", tid) * 2.0)
    b.store("x", tid, b.load("x", tid))
    graph = b.finish()
    inputs = {"x": np.arange(n) * 1.5}
    compiled = compile_kernel(graph)
    event = simulate(compiled, KernelLaunch(graph, inputs), engine="event")
    batched = simulate(compiled, KernelLaunch(graph, inputs), engine="batched")
    assert event.output("doubled") == batched.output("doubled")


# ------------------------------------------------------------------ multicore
def test_shard_threads_is_block_cyclic():
    shards = shard_threads(12, cores=2, block=3)
    assert shards[0].tolist() == [0, 1, 2, 6, 7, 8]
    assert shards[1].tolist() == [3, 4, 5, 9, 10, 11]
    recombined = sorted(t for shard in shards for t in shard.tolist())
    assert recombined == list(range(12))


def test_multicore_matches_single_core():
    workload = MatmulWorkload()
    prepared = workload.prepare({"dim": 8})
    compiled = compile_kernel(prepared.launch("stream").graph)
    single = simulate(compiled, prepared.launch("stream"))
    multi = run_multicore(compiled, prepared.launch("stream"), cores=4)
    assert multi.cores == 4
    assert np.array_equal(single.array("c"), multi.array("c"))
    prepared.check_outputs({"c": multi.array("c")})
    assert multi.stats.threads == prepared.launch("stream").num_threads
    single_counters = single.stats.as_dict()
    multi_counters = multi.stats.as_dict()
    for counter in OP_COUNTERS:
        assert multi_counters[counter] == single_counters[counter], counter


def test_multicore_event_engine_agrees_with_batched():
    launch = _axpy_launch(n=32)
    compiled = compile_kernel(launch.graph)
    event = run_multicore(compiled, _axpy_launch(n=32), cores=3, engine="event")
    batched = run_multicore(compiled, _axpy_launch(n=32), cores=3, engine="batched")
    assert np.array_equal(event.array("out"), batched.array("out"))
    for counter in OP_COUNTERS:
        assert event.stats.as_dict()[counter] == batched.stats.as_dict()[counter]


def test_multicore_rejects_interthread_graphs(scan_launch):
    launch, _ = scan_launch
    compiled = compile_kernel(launch.graph)
    with pytest.raises(SimulationError):
        run_multicore(compiled, launch, cores=2)


def test_simulate_falls_back_to_single_core_for_interthread(scan_launch):
    launch, data = scan_launch
    compiled = compile_kernel(launch.graph)
    result = simulate(compiled, launch, cores=4)
    np.testing.assert_allclose(result.array("prefix"), np.cumsum(data))


def test_simulate_uses_config_cores():
    from dataclasses import replace

    config = replace(default_system_config(), cores=2).validate()
    launch = _axpy_launch(n=24)
    compiled = compile_kernel(launch.graph, config)
    result = simulate(compiled, launch)
    assert result.cores == 2
    reference = _axpy_launch(n=24)
    expected = reference.inputs["x"] * 2.5 + reference.inputs["y"]
    np.testing.assert_allclose(result.array("out"), expected)


def test_auto_engine_honours_explicit_hierarchy():
    """A caller passing a hierarchy wants its counters populated, so
    auto must resolve to the event engine for that call."""
    from repro.memory.hierarchy import MemoryHierarchy

    launch = _axpy_launch(n=16)
    compiled = compile_kernel(launch.graph)
    hierarchy = MemoryHierarchy(compiled.config.memory)
    result = simulate(compiled, launch, memory=hierarchy)
    assert hierarchy.l1.stats.accesses > 0
    flat = result.counters()
    assert flat["l1_read_hits"] + flat["l1_read_misses"] > 0
    assert flat["l1_read_misses"] == hierarchy.l1.stats.read_misses


def test_simulate_forced_batched_downgrades_for_interthread(scan_launch):
    """--engine batched sweeps must run communicating kernels on the
    event engine instead of failing on the first barrier/elevator."""
    launch, data = scan_launch
    compiled = compile_kernel(launch.graph)
    result = simulate(compiled, launch, engine="batched")
    np.testing.assert_allclose(result.array("prefix"), np.cumsum(data))


def test_multicore_counters_include_per_core_hierarchies():
    launch = _axpy_launch(n=32)
    compiled = compile_kernel(launch.graph)
    multi = run_multicore(compiled, launch, cores=2, engine="event")
    counters = multi.counters()
    # Two private hierarchies: each core pays its own compulsory misses.
    assert counters["l1_read_misses"] > 0
    per_core = [r.hierarchy.stats().flat()["l1_read_misses"] for r in multi.core_results]
    assert counters["l1_read_misses"] == sum(per_core)
