"""Cross-engine fidelity of the batched engine's analytic cache model.

The contract (see ``benchmarks/bench_batched_fidelity.py`` for the full
measured table): on order-stable traces the batched engine's L1/L2 miss
counts are *exactly* the event engine's — under the default Table 2
configuration and under a capacity-constrained 2-way 1 KiB L1 alike —
and its cycle estimate stays within 10% on cache-thrashing sweeps.
Store misses must follow the write-allocate read-for-ownership counter
mapping on both engines: an L1 ``write_miss`` whose fill *reads* L2.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.compiler.pipeline import compile_kernel
from repro.config.system import default_system_config
from repro.kernel.builder import KernelBuilder
from repro.sim import simulate
from repro.sim.launch import KernelLaunch
from repro.workloads.registry import get_workload

MISS_COUNTERS = (
    "l1_read_misses",
    "l1_write_misses",
    "l2_read_misses",
    "l2_write_misses",
)

#: (workload, params) for the three streaming acceptance variants.
STREAM_CASES = (
    ("matrixMul", {"dim": 16}),
    ("convolution", {"n": 256}),
    ("reduce", {"n": 256, "window": 32}),
)

#: (workload, variant, params) communicating variants the window-batched
#: engine runs; their traces are replay-ordered, so misses gate exactly.
WINDOW_CASES = (
    ("matrixMul", "dmt", {"dim": 16}),
    ("matrixMul", "dmt_win", {"dim": 16}),
    ("reduce", "dmt_win", {"n": 256, "window": 32}),
)


def capacity_config(size_bytes: int = 1024, ways: int = 2):
    """A capacity-constrained L1 (default: 2-way 1 KiB, 4 sets)."""
    config = default_system_config()
    l1 = replace(config.memory.l1, size_bytes=size_bytes, ways=ways)
    return replace(config, memory=replace(config.memory, l1=l1)).validate()


def run_both(launch_factory, config):
    compiled = compile_kernel(launch_factory().graph, config)
    event = simulate(compiled, launch_factory(), engine="event")
    batched = simulate(compiled, launch_factory(), engine="batched")
    return event, batched


def stream_launch(name, params):
    prepared = get_workload(name).prepare(params)
    return prepared, (lambda: prepared.launch("stream"))


# ------------------------------------------------------------- exact fidelity
@pytest.mark.parametrize("name,params", STREAM_CASES, ids=[c[0] for c in STREAM_CASES])
def test_miss_counts_exact_under_capacity_constrained_l1(name, params):
    """Acceptance bar: batched L1/L2 miss counts exactly equal the event
    engine's on the stream variants under a 2-way 1 KiB L1."""
    prepared, factory = stream_launch(name, params)
    event, batched = run_both(factory, capacity_config())
    event_counters, batched_counters = event.counters(), batched.counters()
    for key in MISS_COUNTERS + ("l1_writebacks", "dram_reads", "dram_writes"):
        assert batched_counters[key] == event_counters[key], key
    # The analytic model is cycle-exact on these order-stable traces.
    assert batched.cycles == event.cycles


@pytest.mark.parametrize("name,params", STREAM_CASES, ids=[c[0] for c in STREAM_CASES])
def test_miss_counts_exact_under_default_config(name, params):
    prepared, factory = stream_launch(name, params)
    event, batched = run_both(factory, default_system_config())
    event_counters, batched_counters = event.counters(), batched.counters()
    for key in MISS_COUNTERS:
        assert batched_counters[key] == event_counters[key], key
    assert batched.cycles == event.cycles


# ----------------------------------------------- window-batched communicating
@pytest.mark.parametrize(
    "name,variant,params", WINDOW_CASES, ids=[f"{c[0]}-{c[1]}" for c in WINDOW_CASES]
)
@pytest.mark.parametrize("config_name", ["default", "capacity"])
def test_window_batched_miss_counts_exact(name, variant, params, config_name):
    """The communicating dmt/dmt_win variants keep the exact-fidelity
    contract on order-stable traces: L1/L2 miss counts, writebacks and
    DRAM traffic equal the event engine's under the default and the
    capacity-constrained configuration alike."""
    config = {"default": default_system_config(), "capacity": capacity_config()}[config_name]
    prepared = get_workload(name).prepare(params)
    compiled = compile_kernel(prepared.launch(variant).graph, config)
    event = simulate(compiled, prepared.launch(variant), engine="event")
    window = simulate(compiled, prepared.launch(variant))
    assert window.engine == "window-batched"
    event_counters, window_counters = event.counters(), window.counters()
    for key in MISS_COUNTERS + ("l1_writebacks", "dram_reads", "dram_writes"):
        assert window_counters[key] == event_counters[key], key


def test_window_batched_cycle_error_within_bar_on_windowed_barrier():
    """The windowed-barrier reduce kernel is the window engine's timing
    worst case (segment maxima approximate the event engine's arrival
    interleaving); the cycle estimate must stay within the 10% bar."""
    prepared = get_workload("reduce").prepare({"n": 256, "window": 32})
    compiled = compile_kernel(prepared.launch("dmt_win").graph, capacity_config())
    event = simulate(compiled, prepared.launch("dmt_win"), engine="event")
    window = simulate(compiled, prepared.launch("dmt_win"))
    error = abs(window.cycles - event.cycles) / event.cycles
    assert error <= 0.10, f"cycle error {error:.1%} (bar 10%)"
    assert window.stats.barrier_arrivals == event.stats.barrier_arrivals


def test_miss_counts_exact_with_mixed_line_sizes():
    """With l1.line_bytes < l2.line_bytes several L1 lines share one L2
    line; the analytic model must re-align at each level (regression:
    it used to probe L2 with L1-aligned addresses, quadrupling L2
    misses and DRAM reads on a 32 B/128 B split)."""
    config = default_system_config()
    l1 = replace(config.memory.l1, size_bytes=1024, ways=2, line_bytes=32)
    config = replace(config, memory=replace(config.memory, l1=l1)).validate()
    prepared, factory = stream_launch("reduce", {"n": 192, "window": 16})
    event, batched = run_both(factory, config)
    event_counters, batched_counters = event.counters(), batched.counters()
    for key in MISS_COUNTERS + ("dram_reads", "dram_writes"):
        assert batched_counters[key] == event_counters[key], key
    assert batched.cycles == event.cycles


def test_cycle_error_within_bar_on_thrashing_config():
    """Overlapped load/store phases (larger matmul, direct-mapped 512 B L1)
    are the replay-order approximation's worst case; the cycle estimate
    must stay within the 10% fidelity bar there."""
    prepared, factory = stream_launch("matrixMul", {"dim": 24})
    event, batched = run_both(factory, capacity_config(size_bytes=512, ways=1))
    error = abs(batched.cycles - event.cycles) / event.cycles
    assert error <= 0.10, f"cycle error {error:.1%} (bar 10%)"
    event_counters, batched_counters = event.counters(), batched.counters()
    # Read misses stay exact even in the overlap regime (the load stream
    # itself is still replayed in event order); only store classification
    # may drift, and not by much.
    assert batched_counters["l1_read_misses"] == event_counters["l1_read_misses"]
    drift = abs(batched_counters["l1_write_misses"] - event_counters["l1_write_misses"])
    assert drift <= 0.10 * max(1, event_counters["l1_write_misses"]) + 25


# -------------------------------------------------------- store RFO contract
def _store_only_launch(n=256):
    builder = KernelBuilder("store_only", n)
    builder.global_array("out", n)
    tid = builder.thread_idx_x()
    builder.store("out", tid, tid * 2.0)
    return KernelLaunch(builder.finish(), {})


def test_store_miss_is_read_for_ownership_on_both_engines():
    """A store miss is an L1 write_miss whose fill *reads* L2 (RFO): L2
    write counters stay zero and DRAM sees reads, not writes — the
    regression the old compulsory line model violated by charging
    l2_write_misses and dram.writes per store miss."""
    event, batched = run_both(_store_only_launch, default_system_config())
    for result in (event, batched):
        counters = result.counters()
        assert counters["l1_write_misses"] > 0
        assert counters["l2_write_misses"] == 0
        assert counters["l2_write_hits"] == 0
        assert counters["l2_read_misses"] == counters["l1_write_misses"]
        assert counters["dram_reads"] == counters["l2_read_misses"]
        assert counters["dram_writes"] == 0
    for key in MISS_COUNTERS + ("l1_write_hits", "dram_reads", "dram_writes"):
        assert batched.counters()[key] == event.counters()[key], key


def test_dirty_writebacks_become_l2_stores_on_both_engines():
    """Evicting a dirty L1 line writes it back to L2 as a store access at
    the victim's own line address; both engines must agree."""
    config = capacity_config(size_bytes=512, ways=1)  # 4 lines: stores thrash
    event, batched = run_both(lambda: _store_only_launch(n=512), config)
    for result in (event, batched):
        counters = result.counters()
        assert counters["l1_writebacks"] > 0
        l2_writes = counters["l2_write_hits"] + counters["l2_write_misses"]
        assert l2_writes == counters["l1_writebacks"]
    for key in MISS_COUNTERS + ("l1_writebacks", "dram_reads", "dram_writes"):
        assert batched.counters()[key] == event.counters()[key], key


# ---------------------------------------------- vectorised walk == sequential
def _run_batched(launch_factory, config, vectorised):
    from repro.sim.batched import BatchedSimulator

    compiled = compile_kernel(launch_factory().graph, config)
    return BatchedSimulator(
        compiled, launch_factory(), analytic_vectorised=vectorised
    ).run()


@pytest.mark.parametrize("name,params", STREAM_CASES, ids=[c[0] for c in STREAM_CASES])
@pytest.mark.parametrize("config_name", ["default", "capacity", "thrash"])
def test_vectorised_walk_identical_to_sequential_walk(name, params, config_name):
    """The per-set vectorised tag walk is not an approximation: cycles
    and every memory-hierarchy counter equal the sequential reference
    walk on the fidelity workloads under every gated memory regime."""
    config = {
        "default": default_system_config(),
        "capacity": capacity_config(),
        "thrash": capacity_config(size_bytes=512, ways=1),
    }[config_name]
    prepared, factory = stream_launch(name, params)
    sequential = _run_batched(factory, config, vectorised=False)
    vectorised = _run_batched(factory, config, vectorised=True)
    assert vectorised.cycles == sequential.cycles
    assert vectorised.counters() == sequential.counters()
    output = next(iter(prepared.expected))
    assert np.array_equal(vectorised.array(output), sequential.array(output))


def test_vectorised_model_identical_on_random_mixed_streams():
    """Model-level differential: random mixed load/store streams with
    non-monotone integral issue cycles, replayed in several batches,
    produce identical completion cycles, counters and MSHR state on the
    vectorised and sequential walks (thrash-heavy config, tiny MSHR so
    prune events fire)."""
    from dataclasses import replace as dc_replace

    from repro.memory.hierarchy import MemoryHierarchy
    from repro.sim.analytic_cache import AnalyticMemoryModel

    rng = np.random.default_rng(1234)
    base = default_system_config().memory
    for write_back, write_allocate, mshr_entries in (
        (True, True, 1),
        (True, True, 32),
        (False, False, 2),
        (True, False, 1),
    ):
        l1 = dc_replace(
            base.l1,
            size_bytes=512,
            line_bytes=64,
            ways=2,
            banks=2,
            hit_latency=4,
            write_back=write_back,
            write_allocate=write_allocate,
            mshr_entries=mshr_entries,
        )
        l2 = dc_replace(base.l2, size_bytes=4096, ways=4, banks=2, hit_latency=8)
        config = dc_replace(base, l1=l1, l2=l2)
        models = []
        for vectorised in (False, True):
            hierarchy = MemoryHierarchy(config)
            models.append(
                (
                    AnalyticMemoryModel(
                        config, hierarchy, dram_contention=2, vectorised=vectorised
                    ),
                    hierarchy,
                )
            )
        clock = 0.0
        for _ in range(4):
            n = int(rng.integers(50, 400))
            addresses = rng.integers(0, 1 << 12, n)
            writes = rng.integers(0, 2, n).astype(bool)
            cycles = np.floor(
                clock + np.cumsum(rng.integers(0, 3, n)) + rng.integers(0, 9, n)
            ).astype(np.float64)
            clock = float(cycles.max()) + 1
            outs = [m.access_batch(addresses, cycles, writes) for m, _ in models]
            assert np.array_equal(outs[0], outs[1])
        assert models[0][1].stats().flat() == models[1][1].stats().flat()
        assert models[0][0].l1.mshr == models[1][0].l1.mshr


# ------------------------------------------------------------- fallback mode
def test_load_dependent_load_falls_back_but_stays_equivalent():
    """A gather (load feeding another load's index) disables the
    event-order replay; outputs and op counters must still match and the
    analytic model must still classify capacity misses."""
    n = 64

    def build():
        from repro.graph.opcodes import DType

        builder = KernelBuilder("gather", n)
        builder.global_array("indices", n, dtype=DType.I32)
        builder.global_array("data", n)
        builder.global_array("out", n)
        tid = builder.thread_idx_x()
        idx = builder.load("indices", tid)
        builder.store("out", tid, builder.load("data", idx))
        graph = builder.finish()
        rng = np.random.default_rng(7)
        inputs = {
            "indices": rng.integers(0, n, n),
            "data": rng.uniform(-1, 1, n),
        }
        return KernelLaunch(graph, inputs)

    from repro.sim.batched import BatchedSimulator

    compiled = compile_kernel(build().graph, capacity_config())
    simulator = BatchedSimulator(compiled, build())
    assert not simulator._ordered_loads
    event = simulate(compiled, build(), engine="event")
    batched = simulator.run()
    assert np.array_equal(event.array("out"), batched.array("out"))
    event_counters, batched_counters = event.stats.as_dict(), batched.stats.as_dict()
    for key in ("alu_ops", "global_loads", "global_stores", "tokens_sent"):
        assert batched_counters[key] == event_counters[key], key
    assert batched.counters()["l1_read_misses"] > 0
