"""Tests for the :func:`repro.sim.simulate` facade and the legacy wrappers."""

import numpy as np
import pytest

from repro.compiler.pipeline import compile_kernel
from repro.errors import SimulationError
from repro.kernel.builder import KernelBuilder
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim import (
    SimulationResult,
    run_cycle_accurate,
    run_sharded,
    simulate,
)
from repro.sim.launch import KernelLaunch


def _axpy_launch(n=24):
    b = KernelBuilder("axpy", n)
    b.global_array("x", n)
    b.global_array("y", n)
    b.global_array("out", n)
    tid = b.thread_idx_x()
    value = b.fma(b.load("x", tid), b.const(2.5), b.load("y", tid))
    b.store("out", tid, value)
    graph = b.finish()
    inputs = {"x": np.arange(n) * 0.37, "y": np.arange(n) * -1.2 + 0.5}
    return KernelLaunch(graph, inputs)


def test_simulate_records_resolved_engine_never_auto():
    launch = _axpy_launch()
    compiled = compile_kernel(launch.graph)
    result = simulate(compiled, launch)  # engine="auto"
    assert isinstance(result, SimulationResult)
    assert result.engine == "batched"
    assert result.stats.extra["engine"] == "batched"
    assert result.counters()["engine"] == "batched"
    assert result.cores == 1


def test_simulate_rejects_unknown_engine():
    launch = _axpy_launch()
    compiled = compile_kernel(launch.graph)
    with pytest.raises(SimulationError, match="unknown engine"):
        simulate(compiled, launch, engine="warp")


def test_simulate_memory_kwarg_pins_single_core():
    launch = _axpy_launch()
    compiled = compile_kernel(launch.graph)
    hierarchy = MemoryHierarchy(compiled.config.memory)
    result = simulate(compiled, launch, memory=hierarchy)
    assert result.engine == "event"  # explicit hierarchy wants exact counters
    assert result.cores == 1
    assert result.hierarchy is hierarchy
    assert hierarchy.l1.stats.accesses > 0
    with pytest.raises(SimulationError, match="single core"):
        simulate(compiled, _axpy_launch(), memory=hierarchy, cores=2)
    # cores=1 is redundant but legal next to an explicit hierarchy.
    simulate(compiled, _axpy_launch(), memory=MemoryHierarchy(compiled.config.memory), cores=1)


def test_simulate_sharded_result_has_no_single_hierarchy():
    launch = _axpy_launch(n=32)
    compiled = compile_kernel(launch.graph)
    result = simulate(compiled, launch, cores=2)
    assert result.cores == 2
    with pytest.raises(SimulationError, match="per core"):
        result.hierarchy
    assert len(result.raw.core_results) == 2


def test_run_cycle_accurate_is_deprecated_but_works():
    launch = _axpy_launch()
    compiled = compile_kernel(launch.graph)
    with pytest.warns(DeprecationWarning, match="simulate"):
        result = run_cycle_accurate(compiled, launch)
    expected = launch.inputs["x"] * 2.5 + launch.inputs["y"]
    np.testing.assert_allclose(result.array("out"), expected)


def test_run_sharded_is_deprecated_but_works():
    launch = _axpy_launch(n=32)
    compiled = compile_kernel(launch.graph)
    with pytest.warns(DeprecationWarning, match="simulate"):
        result = run_sharded(compiled, launch, cores=2)
    expected = launch.inputs["x"] * 2.5 + launch.inputs["y"]
    np.testing.assert_allclose(result.array("out"), expected)
    assert result.stats.extra["cores"] == 2
