"""Property sweep: random data-dependent gather chains, event vs batched.

The spmv workload pins one concrete RA042 kernel; this sweep generalises
it.  Hypothesis draws random index arrays and chains them —
``load(idx_k, load(idx_{k-1}, ... tid))`` — so every load after the
first has a data-dependent address, which is exactly the shape that
forces the batched engine's per-node replay fallback (the trace is not
order-stable).  Outputs must stay bit-identical to the event engine and
every operation counter equal; only cycles (and engine provenance) may
differ.  Cyclic recurrences are excluded by construction: the chains are
acyclic load DAGs, the only inter-thread-free shape the batched engine
accepts.

Marked ``slow``: tier-1 and the CI ``tier1`` job run it, the fast lane
skips it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.pipeline import compile_kernel
from repro.graph.opcodes import DType
from repro.kernel.builder import KernelBuilder
from repro.sim import simulate
from repro.sim.launch import KernelLaunch

pytestmark = pytest.mark.slow


@st.composite
def gather_chains(draw):
    n = draw(st.integers(min_value=4, max_value=24))
    depth = draw(st.integers(min_value=1, max_value=3))
    index_arrays = [
        draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1), min_size=n, max_size=n
            )
        )
        for _ in range(depth)
    ]
    values = draw(
        st.lists(
            st.floats(
                min_value=-8.0, max_value=8.0, allow_nan=False, width=32
            ),
            min_size=n,
            max_size=n,
        )
    )
    scale = draw(st.sampled_from([1.0, 2.0, -0.5]))
    return n, index_arrays, values, scale


@given(gather_chains())
@settings(max_examples=40, deadline=None)
def test_random_gather_chain_is_engine_invariant(chain):
    n, index_arrays, values, scale = chain

    b = KernelBuilder("gather_chain", n)
    for level, _ in enumerate(index_arrays):
        b.global_array(f"idx{level}", n, dtype=DType.I32)
    b.global_array("vals", n)
    b.global_array("out", n)
    tid = b.thread_idx_x()
    pointer = tid
    for level, _ in enumerate(index_arrays):
        pointer = b.load(f"idx{level}", pointer)  # data-dependent address
    b.store("out", tid, b.load("vals", pointer) * scale)
    graph = b.finish()

    inputs = {f"idx{level}": arr for level, arr in enumerate(index_arrays)}
    inputs["vals"] = values

    compiled = compile_kernel(graph)
    event = simulate(compiled, KernelLaunch(graph, dict(inputs)), engine="event")
    batched = simulate(compiled, KernelLaunch(graph, dict(inputs)), engine="batched")
    assert batched.engine == "batched"

    # NumPy reference: follow the chain, then scale.
    pointer = np.arange(n)
    for arr in index_arrays:
        pointer = np.asarray(arr)[pointer]
    expected = (
        np.asarray(values, dtype=np.float32)[pointer] * np.float32(scale)
    )

    assert np.array_equal(event.array("out"), batched.array("out"))
    np.testing.assert_allclose(batched.array("out"), expected, rtol=1e-6)

    event_counters = event.stats.as_dict()
    batched_counters = batched.stats.as_dict()
    for counter, value in event_counters.items():
        if counter in ("cycles", "engine"):
            continue
        assert batched_counters[counter] == value, counter
