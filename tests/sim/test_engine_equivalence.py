"""Differential sweep: event vs batched engine over the whole registry.

Every inter-thread-free workload variant of the registry runs on both
engines at two thread counts; outputs must be bit-identical and every
operation counter equal.  The small sizes run in the fast lane; the full
sweep at the larger thread count is marked ``slow`` (tier-1 and the CI
``tier1`` job include it, the per-version fast test job skips it).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler.pipeline import compile_kernel
from repro.errors import WorkloadError
from repro.sim import simulate
from repro.workloads.registry import all_workloads

#: Candidate dataflow variants probed per workload.
VARIANTS = ("mt", "dmt", "dmt_win", "stream")

#: Two problem sizes (= two thread counts) per stream-capable workload.
SMALL_PARAMS = {
    "matrixMul": {"dim": 6},
    "convolution": {"n": 48},
    "reduce": {"n": 64, "window": 8},
}
LARGE_PARAMS = {
    "matrixMul": {"dim": 16},
    "convolution": {"n": 512},
    "reduce": {"n": 512, "window": 32},
}


def _interthread_free_cases(params_by_workload):
    """Every (workload_name, variant, params) with an inter-thread-free graph."""
    cases = []
    for workload in all_workloads():
        overrides = params_by_workload.get(workload.name)
        params = workload.params_with_defaults(overrides) if overrides else None
        try:
            prepared = workload.prepare(params)
        except WorkloadError:
            continue
        for variant in VARIANTS:
            try:
                graph = prepared.launch(variant).graph
            except WorkloadError:
                continue  # workload has no such variant
            if graph.has_interthread():
                continue
            cases.append((workload.name, variant, prepared.params))
    return cases


SMALL_CASES = _interthread_free_cases(SMALL_PARAMS)
LARGE_CASES = _interthread_free_cases(LARGE_PARAMS)


def test_sweep_covers_every_stream_capable_workload():
    """The discovered sweep must include every registry workload that
    advertises a streaming variant — if a new one appears, it needs a
    params entry above (this test is what notices)."""
    stream_capable = {w.name for w in all_workloads() if w.has_stream_variant()}
    assert {name for name, _, _ in SMALL_CASES} == stream_capable
    assert stream_capable == set(SMALL_PARAMS)
    assert set(LARGE_PARAMS) == set(SMALL_PARAMS)


def _assert_engines_equivalent(name, variant, params):
    workload = next(w for w in all_workloads() if w.name == name)
    prepared = workload.prepare(params)
    compiled = compile_kernel(prepared.launch(variant).graph)
    event = simulate(compiled, prepared.launch(variant), engine="event")
    batched = simulate(compiled, prepared.launch(variant), engine="batched")
    for array_name in prepared.expected:
        assert np.array_equal(event.array(array_name), batched.array(array_name)), array_name
    prepared.check_outputs({n: batched.array(n) for n in prepared.expected})
    for output_name, values in event.outputs.items():
        assert batched.outputs[output_name] == values, output_name
    event_counters = event.stats.as_dict()
    batched_counters = batched.stats.as_dict()
    for counter, value in event_counters.items():
        if counter in ("cycles", "engine"):  # provenance differs by design
            continue
        assert batched_counters[counter] == value, counter


@pytest.mark.parametrize(
    "name,variant,params",
    SMALL_CASES,
    ids=[f"{n}-{v}-small" for n, v, _ in SMALL_CASES],
)
def test_engines_bit_identical_small(name, variant, params):
    _assert_engines_equivalent(name, variant, params)


@pytest.mark.slow
@pytest.mark.parametrize(
    "name,variant,params",
    LARGE_CASES,
    ids=[f"{n}-{v}-large" for n, v, _ in LARGE_CASES],
)
def test_engines_bit_identical_large(name, variant, params):
    _assert_engines_equivalent(name, variant, params)
