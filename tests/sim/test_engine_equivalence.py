"""Differential engine matrix: every registry workload x variant x engine.

Every (workload, variant) kernel of the registry is classified by the
engines able to execute it — ``batched`` for inter-thread-free graphs,
``window-batched`` for feed-forward communicating graphs, event-only for
everything else — and that classification is pinned against an explicit
expected matrix, so a structural regression in any kernel (an elevator
losing its window, a stream variant growing a barrier) fails loudly.

Every batched-capable cell then runs on both the event engine and its
batched engine at two problem sizes; outputs must be bit-identical and
every operation counter equal.  Event-only cells are pinned the other
way: forcing ``engine="batched"`` must degrade to the event engine and
record the request in ``stats.extra["requested_engine"]``.  The small
sizes run in the fast lane; the full sweep at the larger thread count is
marked ``slow`` (tier-1 and the CI ``tier1`` job include it, the
per-version fast test job skips it).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler.pipeline import compile_kernel
from repro.graph.interthread import window_batch_problem
from repro.sim import simulate
from repro.workloads.registry import (
    all_workloads,
    available_variants,
    registry_kernel_count,
)

#: Two problem sizes (= two thread counts) per registry workload.
SMALL_PARAMS = {
    "scan": {"n": 32},
    "matrixMul": {"dim": 6},
    "convolution": {"n": 48},
    "reduce": {"n": 64, "window": 8},
    "lud": {"dim": 6},
    "srad": {"dim": 6},
    "bpnn": {"n_in": 8, "n_out": 8},
    "hotspot": {"dim": 6},
    "pathfinder": {"cols": 32, "rows": 4},
    "spmv": {"rows": 8, "max_nnz": 4},
}
LARGE_PARAMS = {
    "scan": {"n": 128},
    "matrixMul": {"dim": 16},
    "convolution": {"n": 512},
    "reduce": {"n": 512, "window": 32},
    "lud": {"dim": 12},
    "srad": {"dim": 16},
    "bpnn": {"n_in": 16, "n_out": 16},
    "hotspot": {"dim": 16},
    "pathfinder": {"cols": 128, "rows": 5},
    "spmv": {"rows": 64, "max_nnz": 8},
}

#: The full expected engine matrix, spelled out cell by cell.  "event-only"
#: marks kernels no batched engine can execute (whole-block barriers, or
#: scan's cyclic recurrence).  Keep this in Table 3 + variant order.
EXPECTED_MATRIX = {
    ("scan", "mt"): "event-only",
    ("scan", "dmt"): "event-only",
    ("scan", "stream"): "batched",
    ("matrixMul", "mt"): "event-only",
    ("matrixMul", "dmt"): "window-batched",
    ("matrixMul", "dmt_win"): "window-batched",
    ("matrixMul", "stream"): "batched",
    ("convolution", "mt"): "event-only",
    ("convolution", "dmt"): "window-batched",
    ("convolution", "dmt_win"): "window-batched",
    ("convolution", "stream"): "batched",
    ("reduce", "mt"): "event-only",
    ("reduce", "dmt"): "window-batched",
    ("reduce", "dmt_win"): "window-batched",
    ("reduce", "stream"): "batched",
    ("lud", "mt"): "event-only",
    ("lud", "dmt"): "window-batched",
    ("lud", "dmt_win"): "window-batched",
    ("lud", "stream"): "batched",
    ("srad", "mt"): "event-only",
    ("srad", "dmt"): "window-batched",
    ("srad", "dmt_win"): "window-batched",
    ("srad", "stream"): "batched",
    ("bpnn", "mt"): "event-only",
    ("bpnn", "dmt"): "window-batched",
    ("bpnn", "stream"): "batched",
    ("hotspot", "mt"): "event-only",
    ("hotspot", "dmt"): "window-batched",
    ("hotspot", "dmt_win"): "window-batched",
    ("hotspot", "stream"): "batched",
    ("pathfinder", "mt"): "event-only",
    ("pathfinder", "dmt"): "window-batched",
    ("pathfinder", "dmt_win"): "window-batched",
    ("pathfinder", "stream"): "batched",
    ("spmv", "mt"): "event-only",
    ("spmv", "dmt"): "window-batched",
    ("spmv", "dmt_win"): "window-batched",
    ("spmv", "stream"): "batched",
}


def _classify(graph) -> str:
    """The batched engine able to run ``graph``, or "event-only"."""
    if not graph.has_interthread():
        return "batched"
    if window_batch_problem(graph) is None:
        return "window-batched"
    return "event-only"


def _registry_matrix(params_by_workload):
    """(name, variant, params) -> engine class for the whole registry."""
    matrix = {}
    for workload in all_workloads():
        params = workload.params_with_defaults(params_by_workload[workload.name])
        for variant in available_variants(workload):
            prepared = workload.prepare(params)
            graph = prepared.launch(variant).graph
            matrix[(workload.name, variant, tuple(sorted(params.items())))] = _classify(
                graph
            )
    return matrix


SMALL_MATRIX = _registry_matrix(SMALL_PARAMS)
LARGE_MATRIX = _registry_matrix(LARGE_PARAMS)

SMALL_CASES = [
    (name, variant, dict(params), engine)
    for (name, variant, params), engine in SMALL_MATRIX.items()
    if engine != "event-only"
]
LARGE_CASES = [
    (name, variant, dict(params), engine)
    for (name, variant, params), engine in LARGE_MATRIX.items()
    if engine != "event-only"
]
EVENT_ONLY_CASES = [
    (name, variant, dict(params))
    for (name, variant, params), engine in SMALL_MATRIX.items()
    if engine == "event-only"
]


def test_sweep_covers_the_whole_registry():
    """Full-registry coverage: every workload declares a stream variant,
    every workload has a params entry at both sizes, and the discovered
    matrix pins every declared kernel cell against EXPECTED_MATRIX —
    including the event-only cells, so scan's cyclic recurrence is
    *asserted* event-only rather than silently skipped."""
    names = {w.name for w in all_workloads()}
    assert {w.name for w in all_workloads() if w.has_stream_variant()} == names
    assert set(SMALL_PARAMS) == names
    assert set(LARGE_PARAMS) == names
    discovered = {(n, v): e for (n, v, _), e in SMALL_MATRIX.items()}
    assert discovered == EXPECTED_MATRIX
    assert {(n, v): e for (n, v, _), e in LARGE_MATRIX.items()} == EXPECTED_MATRIX
    assert len(EXPECTED_MATRIX) == registry_kernel_count()
    # The scan satellite pins explicitly: cyclic recurrence, event-only.
    assert EXPECTED_MATRIX[("scan", "dmt")] == "event-only"


def _assert_engines_equivalent(name, variant, params, engine):
    workload = next(w for w in all_workloads() if w.name == name)
    prepared = workload.prepare(params)
    compiled = compile_kernel(prepared.launch(variant).graph)
    event = simulate(compiled, prepared.launch(variant), engine="event")
    batched = simulate(compiled, prepared.launch(variant), engine=engine)
    assert event.engine == "event"
    assert batched.engine == engine
    for array_name in prepared.expected:
        assert np.array_equal(event.array(array_name), batched.array(array_name)), array_name
    prepared.check_outputs({n: batched.array(n) for n in prepared.expected})
    for output_name, values in event.outputs.items():
        assert batched.outputs[output_name] == values, output_name
    event_counters = event.stats.as_dict()
    batched_counters = batched.stats.as_dict()
    for counter, value in event_counters.items():
        if counter in ("cycles", "engine"):  # provenance differs by design
            continue
        assert batched_counters[counter] == value, counter


@pytest.mark.parametrize(
    "name,variant,params,engine",
    SMALL_CASES,
    ids=[f"{n}-{v}-small" for n, v, _, _ in SMALL_CASES],
)
def test_engines_bit_identical_small(name, variant, params, engine):
    _assert_engines_equivalent(name, variant, params, engine)


@pytest.mark.slow
@pytest.mark.parametrize(
    "name,variant,params,engine",
    LARGE_CASES,
    ids=[f"{n}-{v}-large" for n, v, _, _ in LARGE_CASES],
)
def test_engines_bit_identical_large(name, variant, params, engine):
    _assert_engines_equivalent(name, variant, params, engine)


@pytest.mark.parametrize(
    "name,variant,params",
    EVENT_ONLY_CASES,
    ids=[f"{n}-{v}" for n, v, _ in EVENT_ONLY_CASES],
)
def test_event_only_cells_degrade_observably(name, variant, params):
    """Forcing the batched engine on an event-only kernel must run the
    event engine and record the original request next to the resolved
    one (the forced-engine degradation satellite, pinned for scan and
    every barrier kernel)."""
    workload = next(w for w in all_workloads() if w.name == name)
    prepared = workload.prepare(params)
    compiled = compile_kernel(prepared.launch(variant).graph)
    run = simulate(compiled, prepared.launch(variant), engine="batched")
    assert run.engine == "event"
    assert run.stats.extra["engine"] == "event"
    assert run.stats.extra["requested_engine"] == "batched"
    prepared.check_outputs({n: run.array(n) for n in prepared.expected})
