"""Tests for execution statistics and the launch descriptor."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.kernel.builder import KernelBuilder
from repro.sim.launch import KernelLaunch
from repro.sim.stats import ExecutionStats


def test_stats_bump_known_and_extra_counters():
    stats = ExecutionStats()
    stats.bump("alu_ops", 5)
    stats.bump("custom_counter", 2)
    assert stats.alu_ops == 5
    assert stats.extra["custom_counter"] == 2
    assert stats.as_dict()["custom_counter"] == 2


def test_stats_derived_properties():
    stats = ExecutionStats(cycles=100, alu_ops=50, fpu_ops=30, control_ops=20)
    assert stats.compute_ops == 80
    assert stats.ops_per_cycle == pytest.approx(1.0)
    stats2 = ExecutionStats()
    assert stats2.ops_per_cycle == 0.0


def test_stats_merge_sums_counters_and_maxes_cycles():
    a = ExecutionStats(cycles=100, alu_ops=10, threads=4)
    b = ExecutionStats(cycles=250, alu_ops=5, threads=4)
    merged = a.merge(b)
    assert merged.cycles == 250
    assert merged.alu_ops == 15
    assert merged.threads == 8


def test_stats_merge_preserves_float_extras():
    a = ExecutionStats(threads=2)
    a.bump("dram_energy_pj", 1.25)
    b = ExecutionStats(threads=2)
    b.bump("dram_energy_pj", 2.5)
    merged = a.merge(b)
    assert merged.extra["dram_energy_pj"] == pytest.approx(3.75)


def test_stats_merge_averages_instructions_per_lane():
    a = ExecutionStats(threads=32, instructions_per_lane=100)
    b = ExecutionStats(threads=32, instructions_per_lane=200)
    merged = a.merge(b)
    # per-lane average, not a volume sum
    assert merged.instructions_per_lane == 150
    # thread-weighted when the sides are unbalanced
    c = ExecutionStats(threads=96, instructions_per_lane=200)
    assert a.merge(c).instructions_per_lane == (100 * 32 + 200 * 96) // 128


def _graph():
    b = KernelBuilder("launch_test", 8)
    b.global_array("in_data", 8)
    b.global_array("out", 8)
    tid = b.thread_idx_x()
    b.store("out", tid, b.load("in_data", tid))
    return b.finish()


def test_launch_builds_memory_image_from_inputs():
    graph = _graph()
    launch = KernelLaunch(graph, {"in_data": np.arange(8.0)})
    assert launch.num_threads == 8
    image = launch.build_memory_image()
    assert image.load("in_data", 3) == 3.0
    assert image.load("out", 3) == 0.0


def test_launch_rejects_unknown_inputs_and_raw_graphs():
    graph = _graph()
    with pytest.raises(SimulationError):
        KernelLaunch(graph, {"nope": np.zeros(8)})
    from repro.graph.dfg import DataflowGraph

    with pytest.raises(SimulationError):
        KernelLaunch(DataflowGraph("bare"), {})
