"""Tests for the Fermi SIMT baseline: ISA, programs, simulator."""

import numpy as np
import pytest

from repro.errors import GpgpuExecutionError, IsaError
from repro.gpgpu.isa import Imm, Instruction, Op, Reg
from repro.gpgpu.program import SimtProgramBuilder
from repro.gpgpu.simulator import run_fermi


# ---------------------------------------------------------------------- ISA
def test_instruction_validation():
    with pytest.raises(IsaError):
        Instruction(Op.LD_GLOBAL, dst=Reg(0), srcs=(Reg(1),))  # missing array
    with pytest.raises(IsaError):
        Instruction(Op.BRA)  # missing target
    with pytest.raises(IsaError):
        Instruction(Op.SETP_LT, dst=Reg(0), srcs=(Reg(1), Reg(2)))  # dst not a pred


def test_program_requires_defined_labels_and_exit():
    b = SimtProgramBuilder("p", 32)
    b.branch("nowhere")
    with pytest.raises(IsaError):
        b.finish()


def test_listing_contains_labels_and_instructions():
    b = SimtProgramBuilder("p", 32)
    b.global_array("out", 32)
    tid = b.tid_linear()
    b.label("top")
    b.st_global("out", tid, Imm(1.0))
    prog = b.finish()
    listing = prog.listing()
    assert "top:" in listing and "st.global" in listing


# ----------------------------------------------------------------- simulator
def test_vector_add_executes_correctly():
    n = 64
    b = SimtProgramBuilder("vadd", n)
    b.global_array("a", n)
    b.global_array("b", n)
    b.global_array("c", n)
    tid = b.tid_linear()
    av = b.ld_global("a", tid)
    bv = b.ld_global("b", tid)
    b.st_global("c", tid, b.add(av, bv))
    prog = b.finish()
    a = np.arange(float(n))
    bb = np.ones(n) * 2
    result = run_fermi(prog, {"a": a, "b": bb})
    np.testing.assert_allclose(result.array("c"), a + bb)
    assert result.cycles > 0
    assert result.stats.instructions_issued >= 6 * (n // 32)


def test_predicated_store_masks_lanes():
    n = 32
    b = SimtProgramBuilder("pred", n)
    b.global_array("out", n)
    tid = b.tid_linear()
    even = b.setp(Op.SETP_EQ, b.mod(tid, Imm(2)), Imm(0))
    b.st_global("out", tid, Imm(7.0), guard=even)
    prog = b.finish()
    result = run_fermi(prog)
    out = result.array("out")
    np.testing.assert_allclose(out[::2], 7.0)
    np.testing.assert_allclose(out[1::2], 0.0)


def test_shared_memory_and_barrier_exchange():
    n = 64
    b = SimtProgramBuilder("reverse", n)
    b.global_array("in_data", n)
    b.global_array("out", n)
    b.shared_array("tile", n)
    tid = b.tid_linear()
    v = b.ld_global("in_data", tid)
    b.st_shared("tile", tid, v)
    b.barrier()
    rev = b.sub(Imm(n - 1), tid)
    b.st_global("out", tid, b.ld_shared("tile", rev))
    prog = b.finish()
    data = np.arange(float(n))
    result = run_fermi(prog, {"in_data": data})
    np.testing.assert_allclose(result.array("out"), data[::-1])
    assert result.stats.barrier_arrivals == n
    assert result.stats.scratch_stores == n


def test_uniform_loop_executes_fixed_trip_count():
    n = 32
    b = SimtProgramBuilder("loop", n)
    b.global_array("out", n)
    tid = b.tid_linear()
    acc = b.mov(Imm(0.0))
    i = b.mov(Imm(0))
    b.label("body")
    b.add(acc, Imm(1.0), dst=acc)
    b.add(i, Imm(1), dst=i)
    again = b.setp(Op.SETP_LT, i, Imm(10))
    b.branch("body", guard=again)
    b.st_global("out", tid, acc)
    prog = b.finish()
    result = run_fermi(prog)
    np.testing.assert_allclose(result.array("out"), 10.0)


def test_divergent_branch_is_rejected():
    n = 32
    b = SimtProgramBuilder("diverge", n)
    b.global_array("out", n)
    tid = b.tid_linear()
    odd = b.setp(Op.SETP_EQ, b.mod(tid, Imm(2)), Imm(1))
    b.label("skip")
    b.branch("skip", guard=odd)
    b.st_global("out", tid, Imm(1.0))
    prog = b.finish()
    with pytest.raises(GpgpuExecutionError):
        run_fermi(prog)


def test_register_and_issue_statistics_scale_with_lanes():
    n = 64
    b = SimtProgramBuilder("stats", n)
    b.global_array("out", n)
    tid = b.tid_linear()
    b.st_global("out", tid, b.mul(tid, Imm(3)))
    prog = b.finish()
    result = run_fermi(prog)
    assert result.stats.instructions_per_lane == result.stats.instructions_issued * 32
    assert result.stats.register_writes > 0
    assert result.counters()["global_transactions"] >= 2
