"""Tests for DOT / networkx export."""

from repro.graph.dfg import DataflowGraph
from repro.graph.opcodes import Opcode
from repro.graph.visualize import to_dot, to_networkx


def _graph():
    g = DataflowGraph("viz")
    c = g.add_node(Opcode.CONST, params={"value": 7})
    e = g.add_node(Opcode.ELEVATOR, params={"delta": 1, "const": 0.0})
    st = g.add_node(Opcode.STORE, params={"array": "out"})
    g.add_edge(c, e, 0)
    g.add_edge(c, st, 0)
    g.add_edge(e, st, 1)
    return g


def test_networkx_export_preserves_structure():
    g = _graph()
    nxg = to_networkx(g)
    assert nxg.number_of_nodes() == 3
    assert nxg.number_of_edges() == 3
    temporal = [d for _, _, d in nxg.edges(data=True) if d["temporal"]]
    assert len(temporal) == 1


def test_dot_output_mentions_every_node_and_style():
    g = _graph()
    dot = to_dot(g)
    assert dot.startswith('digraph "viz"')
    for node in g.nodes:
        assert f"n{node.node_id}" in dot
    assert "dashed" in dot  # temporal edge styling
    assert "Δ=1" in dot
