"""Tests for graph validation."""

import pytest

from repro.errors import GraphValidationError
from repro.graph.dfg import DataflowGraph
from repro.graph.opcodes import DType, Opcode
from repro.graph.validate import validate_graph, validation_issues


def _valid_graph():
    g = DataflowGraph("valid")
    tid = g.add_node(Opcode.TID_LINEAR)
    c = g.add_node(Opcode.CONST, params={"value": 1})
    add = g.add_node(Opcode.ADD)
    store = g.add_node(Opcode.STORE, params={"array": "out", "elem_bytes": 4})
    g.add_edge(tid, add, 0)
    g.add_edge(c, add, 1)
    g.add_edge(tid, store, 0)
    g.add_edge(add, store, 1)
    return g


def test_valid_graph_passes():
    validate_graph(_valid_graph())


def test_missing_operand_detected():
    g = _valid_graph()
    add = g.nodes_with_opcode(Opcode.ADD)[0]
    g2 = DataflowGraph()
    # Build a graph with an under-fed ADD directly.
    a = g2.add_node(Opcode.CONST, params={"value": 1})
    bad = g2.add_node(Opcode.ADD)
    st = g2.add_node(Opcode.STORE, params={"array": "o"})
    g2.add_edge(a, bad, 0)
    g2.add_edge(a, st, 0)
    g2.add_edge(bad, st, 1)
    issues = validation_issues(g2)
    assert any("operands" in issue for issue in issues)
    assert add is not None


def test_const_without_value_detected():
    g = DataflowGraph()
    c = g.add_node(Opcode.CONST)
    st = g.add_node(Opcode.STORE, params={"array": "o"})
    g.add_edge(c, st, 0)
    g.add_edge(c, st, 1)
    assert any("value" in i for i in validation_issues(g))


def test_elevator_without_delta_detected():
    g = DataflowGraph()
    c = g.add_node(Opcode.CONST, params={"value": 1})
    e = g.add_node(Opcode.ELEVATOR, params={"const": 0})
    st = g.add_node(Opcode.STORE, params={"array": "o"})
    g.add_edge(c, e, 0)
    g.add_edge(c, st, 0)
    g.add_edge(e, st, 1)
    assert any("delta" in i for i in validation_issues(g))


def test_graph_without_side_effects_detected():
    g = DataflowGraph()
    g.add_node(Opcode.CONST, params={"value": 1})
    assert any("no STORE or OUTPUT" in i for i in validation_issues(g))


def test_comparison_must_be_bool():
    g = DataflowGraph()
    a = g.add_node(Opcode.CONST, params={"value": 1})
    lt = g.add_node(Opcode.LT, DType.I32)
    st = g.add_node(Opcode.STORE, params={"array": "o"})
    g.add_edge(a, lt, 0)
    g.add_edge(a, lt, 1)
    g.add_edge(a, st, 0)
    g.add_edge(lt, st, 1)
    assert any("BOOL" in i for i in validation_issues(g))


def test_validate_raises_with_all_issues():
    g = DataflowGraph("broken")
    g.add_node(Opcode.CONST)
    with pytest.raises(GraphValidationError) as excinfo:
        validate_graph(g)
    assert "broken" in str(excinfo.value)
