"""Tests for the shared inter-thread communication semantics."""

import pytest

from repro.graph.dfg import DataflowGraph
from repro.graph.interthread import (
    eldst_source,
    elevator_destination,
    elevator_source,
    linear_offset,
    linearize,
    same_window,
    unlinearize,
)
from repro.graph.opcodes import Opcode


def _elevator(delta, const=0.0, window=None, src_offset=None):
    g = DataflowGraph()
    params = {"delta": delta, "const": const, "window": window}
    if src_offset is not None:
        params["src_offset"] = src_offset
    return g.add_node(Opcode.ELEVATOR, params=params)


def test_linearize_roundtrip():
    block = (4, 4, 2)
    for tid in range(32):
        assert linearize(unlinearize(tid, block), block) == tid


def test_linear_offset_multidimensional():
    assert linear_offset((1, 0), (8, 8)) == 1
    assert linear_offset((0, 1), (8, 8)) == 8
    assert linear_offset((0, 0, 1), (4, 4, 4)) == 16
    assert linear_offset(-3, (8,)) == -3


def test_same_window():
    assert same_window(0, 15, 16)
    assert not same_window(15, 16, 16)
    assert same_window(5, 500, None)


def test_elevator_source_simple_delta():
    node = _elevator(delta=1)
    assert elevator_source(node, 5, (16,), 16) == 4
    assert elevator_source(node, 0, (16,), 16) is None


def test_elevator_source_negative_delta():
    node = _elevator(delta=-1)  # consumer c receives from c + 1
    assert elevator_source(node, 5, (16,), 16) == 6
    assert elevator_source(node, 15, (16,), 16) is None


def test_elevator_destination_mirrors_source():
    node = _elevator(delta=3)
    num = 32
    for producer in range(num):
        dst = elevator_destination(node, producer, (num,), num)
        if dst is not None:
            assert elevator_source(node, dst, (num,), num) == producer


def test_window_bounds_communication():
    node = _elevator(delta=1, window=8)
    assert elevator_source(node, 8, (32,), 32) is None  # first thread of group 2
    assert elevator_source(node, 9, (32,), 32) == 8


def test_multidimensional_offset_boundaries():
    node = _elevator(delta=-4, src_offset=(0, -1))
    block = (4, 4)
    # thread (x=2, y=0) has no northern neighbour
    assert elevator_source(node, 2, block, 16) is None
    # thread (x=2, y=1) receives from (2, 0) = tid 2
    assert elevator_source(node, 6, block, 16) == 2


def test_eldst_source_matches_elevator_semantics():
    node_params = {"delta": 4, "const": 0, "window": None, "array": "a"}
    g = DataflowGraph()
    node = g.add_node(Opcode.ELDST, params=node_params)
    assert eldst_source(node, 7, (16,), 16) == 3
    assert eldst_source(node, 2, (16,), 16) is None


def test_invalid_block_dim_rejected():
    from repro.errors import GraphError

    with pytest.raises(GraphError):
        linearize((0,), (0,))
    with pytest.raises(GraphError):
        linearize((0,), (2, 2, 2, 2))
