"""Tests for the opcode tables."""

import pytest

from repro.graph.opcodes import OPCODE_INFO, Opcode, UnitClass, opcode_info


def test_every_opcode_has_info():
    assert set(OPCODE_INFO) == set(Opcode)


def test_arity_bounds_are_consistent():
    for opcode, info in OPCODE_INFO.items():
        assert 0 <= info.min_arity <= info.max_arity, opcode


def test_sources_have_no_operands():
    for opcode in (Opcode.CONST, Opcode.TID_X, Opcode.TID_LINEAR):
        assert opcode_info(opcode).max_arity == 0


def test_output_is_a_sink():
    assert not opcode_info(Opcode.OUTPUT).has_output


def test_inter_thread_opcodes_map_to_new_units():
    assert opcode_info(Opcode.ELEVATOR).unit_class is UnitClass.ELEVATOR
    assert opcode_info(Opcode.ELDST).unit_class is UnitClass.ELDST


def test_accepts_arity():
    info = opcode_info(Opcode.LOAD)
    assert info.accepts_arity(1)
    assert info.accepts_arity(2)
    assert not info.accepts_arity(3)
    assert not info.accepts_arity(0)


@pytest.mark.parametrize("opcode", [Opcode.ADD, Opcode.MUL, Opcode.MIN, Opcode.EQ])
def test_commutative_flags(opcode):
    assert opcode_info(opcode).commutative


def test_non_commutative_flags():
    assert not opcode_info(Opcode.SUB).commutative
    assert not opcode_info(Opcode.DIV).commutative
