"""Tests for pure opcode evaluation."""

import math

import pytest

from repro.errors import SimulationError
from repro.graph.dfg import DataflowGraph
from repro.graph.opcodes import DType, Opcode
from repro.graph.semantics import PURE_OPCODES, coerce, evaluate_pure


def _node(opcode, dtype=DType.I32):
    return DataflowGraph().add_node(opcode, dtype)


@pytest.mark.parametrize(
    "opcode,operands,expected",
    [
        (Opcode.ADD, (3, 4), 7),
        (Opcode.SUB, (3, 4), -1),
        (Opcode.MUL, (3, 4), 12),
        (Opcode.MIN, (3, 4), 3),
        (Opcode.MAX, (3, 4), 4),
        (Opcode.ABS, (-3,), 3),
        (Opcode.NEG, (3,), -3),
        (Opcode.FMA, (2, 3, 4), 10),
        (Opcode.AND, (0b1100, 0b1010), 0b1000),
        (Opcode.OR, (0b1100, 0b1010), 0b1110),
        (Opcode.XOR, (0b1100, 0b1010), 0b0110),
        (Opcode.SHL, (1, 4), 16),
        (Opcode.SHR, (16, 4), 1),
    ],
)
def test_integer_operations(opcode, operands, expected):
    assert evaluate_pure(_node(opcode), operands) == expected


def test_integer_division_truncates_toward_zero():
    assert evaluate_pure(_node(Opcode.DIV), (7, 2)) == 3
    assert evaluate_pure(_node(Opcode.DIV), (-7, 2)) == -3
    assert evaluate_pure(_node(Opcode.MOD), (-7, 2)) == -1


def test_division_by_zero_raises_for_integers():
    with pytest.raises(SimulationError):
        evaluate_pure(_node(Opcode.DIV), (1, 0))


def test_float_division_by_zero_gives_infinity():
    assert evaluate_pure(_node(Opcode.DIV, DType.F32), (1.0, 0.0)) == math.inf


@pytest.mark.parametrize(
    "opcode,operands,expected",
    [
        (Opcode.LT, (1, 2), True),
        (Opcode.LE, (2, 2), True),
        (Opcode.GT, (1, 2), False),
        (Opcode.GE, (2, 2), True),
        (Opcode.EQ, (2, 2), True),
        (Opcode.NE, (2, 2), False),
        (Opcode.LAND, (1, 0), False),
        (Opcode.LOR, (1, 0), True),
        (Opcode.LNOT, (0,), True),
    ],
)
def test_comparisons_and_logic(opcode, operands, expected):
    assert evaluate_pure(_node(opcode, DType.BOOL), operands) is expected


def test_select_picks_by_condition():
    node = _node(Opcode.SELECT, DType.F32)
    assert evaluate_pure(node, (True, 1.5, 2.5)) == 1.5
    assert evaluate_pure(node, (False, 1.5, 2.5)) == 2.5


def test_special_functions():
    assert evaluate_pure(_node(Opcode.SQRT, DType.F32), (4.0,)) == 2.0
    assert evaluate_pure(_node(Opcode.RCP, DType.F32), (4.0,)) == 0.25
    assert math.isclose(evaluate_pure(_node(Opcode.EXP, DType.F32), (0.0,)), 1.0)


def test_non_pure_opcode_rejected():
    with pytest.raises(SimulationError):
        evaluate_pure(_node(Opcode.LOAD), (0,))


def test_coerce_respects_dtype():
    assert coerce(3.7, DType.I32) == 3
    assert coerce(1, DType.BOOL) is True
    assert isinstance(coerce(2, DType.F32), float)


def test_pure_opcode_set_excludes_memory_and_interthread():
    assert Opcode.LOAD not in PURE_OPCODES
    assert Opcode.ELEVATOR not in PURE_OPCODES
    assert Opcode.ELDST not in PURE_OPCODES
