"""Tests for the dataflow-graph container."""

import pytest

from repro.errors import GraphError
from repro.graph.dfg import DataflowGraph
from repro.graph.opcodes import DType, Opcode, UnitClass


def _small_graph() -> DataflowGraph:
    g = DataflowGraph("g")
    a = g.add_node(Opcode.CONST, params={"value": 1})
    b = g.add_node(Opcode.CONST, params={"value": 2})
    add = g.add_node(Opcode.ADD)
    out = g.add_node(Opcode.OUTPUT, params={"name": "r"})
    g.add_edge(a, add, 0)
    g.add_edge(b, add, 1)
    g.add_edge(add, out, 0)
    return g


def test_add_node_assigns_unique_ids():
    g = _small_graph()
    ids = [n.node_id for n in g.nodes]
    assert len(ids) == len(set(ids)) == 4


def test_edges_and_inputs():
    g = _small_graph()
    add = g.nodes_with_opcode(Opcode.ADD)[0]
    assert sorted(g.inputs_of(add.node_id)) == [0, 1]
    assert g.arity_of(add.node_id) == 2
    assert g.num_edges() == 3


def test_duplicate_port_rejected():
    g = DataflowGraph()
    a = g.add_node(Opcode.CONST, params={"value": 1})
    neg = g.add_node(Opcode.NEG)
    g.add_edge(a, neg, 0)
    with pytest.raises(GraphError):
        g.add_edge(a, neg, 0)


def test_edge_to_unknown_node_rejected():
    g = DataflowGraph()
    a = g.add_node(Opcode.CONST, params={"value": 1})
    with pytest.raises(GraphError):
        g.add_edge(a.node_id, 999, 0)


def test_edge_from_sink_rejected():
    g = DataflowGraph()
    a = g.add_node(Opcode.CONST, params={"value": 1})
    out = g.add_node(Opcode.OUTPUT, params={"name": "x"})
    g.add_edge(a, out, 0)
    neg = g.add_node(Opcode.NEG)
    with pytest.raises(GraphError):
        g.add_edge(out, neg, 0)


def test_port_beyond_arity_rejected():
    g = DataflowGraph()
    a = g.add_node(Opcode.CONST, params={"value": 1})
    neg = g.add_node(Opcode.NEG)
    with pytest.raises(GraphError):
        g.add_edge(a, neg, 5)


def test_remove_node_drops_edges():
    g = _small_graph()
    add = g.nodes_with_opcode(Opcode.ADD)[0]
    g.remove_node(add.node_id)
    assert add.node_id not in g
    out = g.nodes_with_opcode(Opcode.OUTPUT)[0]
    assert g.arity_of(out.node_id) == 0


def test_replace_input():
    g = _small_graph()
    add = g.nodes_with_opcode(Opcode.ADD)[0]
    c = g.add_node(Opcode.CONST, params={"value": 3})
    g.replace_input(add, 1, c)
    assert g.inputs_of(add.node_id)[1] == c.node_id


def test_successors_and_predecessors():
    g = _small_graph()
    a = g.nodes[0]
    add = g.nodes_with_opcode(Opcode.ADD)[0]
    assert (add.node_id, 0) in g.successors(a.node_id)
    assert a.node_id in g.predecessors(add.node_id)


def test_topological_order_is_consistent():
    g = _small_graph()
    order = [n.node_id for n in g.topological_order()]
    add = g.nodes_with_opcode(Opcode.ADD)[0]
    out = g.nodes_with_opcode(Opcode.OUTPUT)[0]
    assert order.index(add.node_id) < order.index(out.node_id)


def test_cycle_detection_in_topological_order():
    g = DataflowGraph()
    a = g.add_node(Opcode.NEG)
    b = g.add_node(Opcode.NEG)
    g.add_edge(a, b, 0)
    g.add_edge(b, a, 0)
    with pytest.raises(GraphError):
        g.topological_order()


def test_temporal_edges_excluded_from_cycles():
    g = DataflowGraph()
    elev = g.add_node(Opcode.ELEVATOR, params={"delta": 1, "const": 0})
    add = g.add_node(Opcode.ADD)
    c = g.add_node(Opcode.CONST, params={"value": 1})
    g.add_edge(elev, add, 0)
    g.add_edge(c, add, 1)
    g.add_edge(add, elev, 0)  # the recurrence (prefix sum shape)
    order = g.topological_order(ignore_temporal=True)
    assert len(order) == 3


def test_copy_is_independent():
    g = _small_graph()
    clone = g.copy("clone")
    clone.remove_node(clone.nodes_with_opcode(Opcode.ADD)[0].node_id)
    assert len(g) == 4
    assert len(clone) == 3


def test_unit_demand_skips_sources():
    g = _small_graph()
    demand = g.unit_demand()
    assert UnitClass.SOURCE not in demand
    assert demand[UnitClass.ALU] == 1


def test_float_arith_maps_to_fpu():
    g = DataflowGraph()
    n = g.add_node(Opcode.ADD, DType.F32)
    assert n.unit_class is UnitClass.FPU
