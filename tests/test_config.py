"""Tests for the Table 2 system configuration."""

import json
import subprocess
import sys

import pytest

from repro.config.system import (
    canonical_config_json,
    config_digest,
)
from repro.config.system import (
    CacheConfig,
    CgraGridConfig,
    DramConfig,
    FermiSmConfig,
    LatencyConfig,
    NocConfig,
    ScratchpadConfig,
    SystemConfig,
    TokenBufferConfig,
    default_system_config,
)
from repro.errors import ConfigurationError


def test_default_configuration_matches_table2():
    config = default_system_config()
    assert config.grid.total_units == 140
    assert config.grid.num_alu == 32
    assert config.grid.num_fpu == 32
    assert config.grid.num_special == 12
    assert config.grid.num_ldst == 32
    assert config.grid.num_control == 16
    assert config.grid.num_split_join == 16
    assert config.token_buffer.entries == 16
    assert config.core_clock_ghz == pytest.approx(1.4)
    assert config.l2_clock_ghz == pytest.approx(0.7)
    assert config.dram_clock_ghz == pytest.approx(0.924)
    assert config.memory.l1.size_bytes == 64 * 1024
    assert config.memory.l1.banks == 32
    assert config.memory.l1.line_bytes == 128
    assert config.memory.l1.ways == 4
    assert config.memory.l2.ways == 16
    assert config.memory.dram.channels == 6
    assert config.memory.dram.banks_per_channel == 16
    assert config.fermi.warp_size == 32


def test_describe_mentions_the_headline_numbers():
    text = default_system_config().describe()
    assert "140" in text and "32 ALUs" in text and "GDDR5" in text


def test_to_dict_round_trips_the_grid():
    data = default_system_config().to_dict()
    assert data["grid"]["rows"] * data["grid"]["cols"] >= data["grid"]["num_alu"]


def test_from_dict_round_trips_through_json():
    config = SystemConfig(cores=4, token_buffer=TokenBufferConfig(entries=8))
    via_json = json.loads(json.dumps(config.to_dict()))
    rebuilt = SystemConfig.from_dict(via_json)
    assert rebuilt == config
    assert isinstance(rebuilt.grid, CgraGridConfig)
    assert isinstance(rebuilt.memory.l1, CacheConfig)
    assert rebuilt.token_buffer.entries == 8
    assert rebuilt.cores == 4


def test_from_dict_rejects_unknown_keys_and_invalid_values():
    data = default_system_config().to_dict()
    data["warp_speed"] = 9
    with pytest.raises(ConfigurationError):
        SystemConfig.from_dict(data)
    bad = default_system_config().to_dict()
    bad["token_buffer"]["entries"] = 0
    with pytest.raises(ConfigurationError):
        SystemConfig.from_dict(bad)


def test_config_digest_is_stable_across_processes():
    config = default_system_config()
    assert config_digest(config) == config_digest(config.to_dict()) == config.digest()
    assert config_digest(SystemConfig(cores=2)) != config_digest(config)
    # Key order must not matter: canonical JSON sorts keys.
    shuffled = dict(reversed(list(config.to_dict().items())))
    assert config_digest(shuffled) == config_digest(config)
    script = (
        "from repro.config.system import config_digest, default_system_config;"
        "print(config_digest(default_system_config()))"
    )
    out = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True, check=True
    )
    assert out.stdout.strip() == config_digest(config)


def test_canonical_config_json_has_no_whitespace():
    text = canonical_config_json(default_system_config())
    assert " " not in text and "\n" not in text


def test_grid_must_fit_rectangle():
    with pytest.raises(ConfigurationError):
        CgraGridConfig(rows=2, cols=2).validate()


def test_cache_geometry_validation():
    with pytest.raises(ConfigurationError):
        CacheConfig(name="bad", size_bytes=1000, line_bytes=128, ways=3, banks=1,
                    hit_latency=1).validate()
    assert CacheConfig(name="ok", size_bytes=1024, line_bytes=64, ways=2, banks=2,
                       hit_latency=1).num_sets == 8


def test_component_validation_errors():
    with pytest.raises(ConfigurationError):
        TokenBufferConfig(entries=0).validate()
    with pytest.raises(ConfigurationError):
        NocConfig(link_bandwidth_tokens=0).validate()
    with pytest.raises(ConfigurationError):
        DramConfig(channels=0).validate()
    with pytest.raises(ConfigurationError):
        ScratchpadConfig(size_bytes=0).validate()
    with pytest.raises(ConfigurationError):
        LatencyConfig(alu=0).validate()
    with pytest.raises(ConfigurationError):
        FermiSmConfig(warp_size=0).validate()
    with pytest.raises(ConfigurationError):
        SystemConfig(core_clock_ghz=0).validate()


def test_fermi_dispatch_cycles():
    fermi = FermiSmConfig()
    assert fermi.dispatch_cycles("alu") == 1
    assert fermi.dispatch_cycles("memory") == 2
    assert fermi.dispatch_cycles("sfu") == 8
    assert fermi.dispatch_cycles("control") == 1
