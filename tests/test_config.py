"""Tests for the Table 2 system configuration."""

import pytest

from repro.config.system import (
    CacheConfig,
    CgraGridConfig,
    DramConfig,
    FermiSmConfig,
    LatencyConfig,
    NocConfig,
    ScratchpadConfig,
    SystemConfig,
    TokenBufferConfig,
    default_system_config,
)
from repro.errors import ConfigurationError


def test_default_configuration_matches_table2():
    config = default_system_config()
    assert config.grid.total_units == 140
    assert config.grid.num_alu == 32
    assert config.grid.num_fpu == 32
    assert config.grid.num_special == 12
    assert config.grid.num_ldst == 32
    assert config.grid.num_control == 16
    assert config.grid.num_split_join == 16
    assert config.token_buffer.entries == 16
    assert config.core_clock_ghz == pytest.approx(1.4)
    assert config.l2_clock_ghz == pytest.approx(0.7)
    assert config.dram_clock_ghz == pytest.approx(0.924)
    assert config.memory.l1.size_bytes == 64 * 1024
    assert config.memory.l1.banks == 32
    assert config.memory.l1.line_bytes == 128
    assert config.memory.l1.ways == 4
    assert config.memory.l2.ways == 16
    assert config.memory.dram.channels == 6
    assert config.memory.dram.banks_per_channel == 16
    assert config.fermi.warp_size == 32


def test_describe_mentions_the_headline_numbers():
    text = default_system_config().describe()
    assert "140" in text and "32 ALUs" in text and "GDDR5" in text


def test_to_dict_round_trips_the_grid():
    data = default_system_config().to_dict()
    assert data["grid"]["rows"] * data["grid"]["cols"] >= data["grid"]["num_alu"]


def test_grid_must_fit_rectangle():
    with pytest.raises(ConfigurationError):
        CgraGridConfig(rows=2, cols=2).validate()


def test_cache_geometry_validation():
    with pytest.raises(ConfigurationError):
        CacheConfig(name="bad", size_bytes=1000, line_bytes=128, ways=3, banks=1,
                    hit_latency=1).validate()
    assert CacheConfig(name="ok", size_bytes=1024, line_bytes=64, ways=2, banks=2,
                       hit_latency=1).num_sets == 8


def test_component_validation_errors():
    with pytest.raises(ConfigurationError):
        TokenBufferConfig(entries=0).validate()
    with pytest.raises(ConfigurationError):
        NocConfig(link_bandwidth_tokens=0).validate()
    with pytest.raises(ConfigurationError):
        DramConfig(channels=0).validate()
    with pytest.raises(ConfigurationError):
        ScratchpadConfig(size_bytes=0).validate()
    with pytest.raises(ConfigurationError):
        LatencyConfig(alu=0).validate()
    with pytest.raises(ConfigurationError):
        FermiSmConfig(warp_size=0).validate()
    with pytest.raises(ConfigurationError):
        SystemConfig(core_clock_ghz=0).validate()


def test_fermi_dispatch_cycles():
    fermi = FermiSmConfig()
    assert fermi.dispatch_cycles("alu") == 1
    assert fermi.dispatch_cycles("memory") == 2
    assert fermi.dispatch_cycles("sfu") == 8
    assert fermi.dispatch_cycles("control") == 1
