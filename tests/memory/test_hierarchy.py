"""Tests for DRAM, scratchpad, coalescer and the assembled hierarchy."""

import pytest

from repro.config.system import DramConfig, MemorySystemConfig, ScratchpadConfig
from repro.memory.coalescer import Transaction, coalesce, coalescing_efficiency
from repro.memory.dram import DramModel
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.request import AccessType, HitLevel
from repro.memory.scratchpad import Scratchpad


# --------------------------------------------------------------------- DRAM
def test_dram_fixed_latency_and_bank_queueing():
    dram = DramModel(DramConfig(channels=1, banks_per_channel=1, access_latency=50,
                                bank_busy_cycles=8))
    first = dram.access(0, False, 0)
    second = dram.access(0, False, 0)
    assert first == 50
    assert second == 8 + 50  # queued behind the first burst
    assert dram.stats.reads == 2
    assert dram.stats.queue_cycles == 8


def test_dram_channels_interleave():
    dram = DramModel(DramConfig(channels=2, banks_per_channel=1, access_latency=50,
                                bank_busy_cycles=8), line_bytes=128)
    a = dram.access(0, False, 0)
    b = dram.access(128, False, 0)  # next line -> other channel
    assert a == b == 50


# ---------------------------------------------------------------- scratchpad
def test_scratchpad_bank_conflicts_serialise():
    pad = Scratchpad(ScratchpadConfig(banks=2, access_latency=4, bank_conflict_penalty=1))
    same_bank = [0, 8]  # word 0 and word 2 both map to bank 0
    done = pad.access_group(same_bank, is_write=False, cycle=0)
    assert done > 4
    assert pad.stats.bank_conflicts >= 1


def test_scratchpad_broadcast_counts_once():
    pad = Scratchpad(ScratchpadConfig(banks=32, access_latency=4))
    done = pad.access_group([0, 0, 0, 0], is_write=False, cycle=0)
    assert pad.stats.reads == 1
    assert done == 4


# ----------------------------------------------------------------- coalescer
def test_coalesce_groups_by_line():
    txns = coalesce([0, 4, 8, 128, None], line_bytes=128)
    assert len(txns) == 2
    assert txns[0] == Transaction(line_address=0, size=128, lanes=(0, 1, 2))
    assert coalescing_efficiency([0, 4, 8], 128) == 1.0
    assert coalescing_efficiency([0, 128], 128) == 0.5


def test_coalesce_rejects_bad_line_size():
    with pytest.raises(ValueError):
        coalesce([0], line_bytes=0)


# ----------------------------------------------------------------- hierarchy
def test_hierarchy_hit_levels_progress():
    h = MemoryHierarchy(MemorySystemConfig())
    cold = h.load(0, cycle=0)
    assert cold.hit_level is HitLevel.DRAM
    warm = h.load(4, cycle=cold.complete_cycle)
    assert warm.hit_level is HitLevel.L1
    assert warm.latency < cold.latency


def test_hierarchy_group_access_counts_transactions():
    h = MemoryHierarchy(MemorySystemConfig())
    addresses = [i * 4 for i in range(32)]
    _, transactions = h.access_group(addresses, AccessType.LOAD, 0)
    assert transactions == 1
    _, transactions = h.access_group([0, 1024, 2048], AccessType.LOAD, 100)
    assert transactions == 3


def test_hierarchy_write_through_option_changes_policy():
    wt = MemoryHierarchy(MemorySystemConfig(), l1_write_through=True)
    assert wt.l1.config.write_back is False
    wb = MemoryHierarchy(MemorySystemConfig())
    assert wb.l1.config.write_back is True


def test_hierarchy_stats_flatten():
    h = MemoryHierarchy(MemorySystemConfig())
    h.load(0, 0)
    flat = h.stats().flat()
    assert flat["l1_read_misses"] == 1
    assert flat["dram_reads"] == 1
