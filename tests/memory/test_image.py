"""Tests for the functional memory image."""

import numpy as np
import pytest

from repro.errors import MemoryModelError
from repro.graph.opcodes import DType
from repro.kernel.arrays import ArrayTable
from repro.memory.image import MemoryImage


def _image():
    table = ArrayTable()
    table.declare("a", 8, DType.F32)
    table.declare("b", 4, DType.I32)
    return MemoryImage(table)


def test_initialise_and_load():
    image = _image()
    image.set_array("a", np.arange(8.0))
    assert image.load("a", 3) == 3.0
    assert image.array("b").dtype == np.int64


def test_store_and_snapshot():
    image = _image()
    image.store("a", 0, 42.0)
    snap = image.snapshot()
    image.store("a", 0, 0.0)
    assert snap["a"][0] == 42.0


def test_bounds_checks():
    image = _image()
    with pytest.raises(MemoryModelError):
        image.load("a", 8)
    with pytest.raises(MemoryModelError):
        image.store("b", -1, 0)
    with pytest.raises(MemoryModelError):
        image.load("missing", 0)


def test_wrong_length_initialisation_rejected():
    image = _image()
    with pytest.raises(MemoryModelError):
        image.set_array("a", np.zeros(3))


def test_address_of_uses_spec_layout():
    image = _image()
    base = image.spec("a").base_address
    assert image.address_of("a", 2) == base + 8
