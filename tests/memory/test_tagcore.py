"""The shared tag core: geometry math and LRU equivalence properties.

The cross-engine fidelity contract rests on one fact: replaying a line
address stream through :class:`~repro.memory.tagcore.LruTagStore` (what
the batched engine's analytic model does) classifies every access
exactly like :class:`~repro.memory.cache.SetAssociativeCache` (what the
event engine does).  The hypothesis sweep below checks that on random
traces over random geometries and write policies; it is `slow`-marked
like the other property sweeps.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.system import CacheConfig
from repro.memory.cache import SetAssociativeCache
from repro.memory.request import AccessType
from repro.memory.tagcore import CacheGeometry, LruTagStore


# ------------------------------------------------------------------ geometry
def test_geometry_scalar_and_vector_agree():
    geometry = CacheGeometry(line_bytes=128, num_sets=4, ways=2)
    addresses = np.array([0, 1, 127, 128, 513, 4096, 65535], dtype=np.int64)
    lines = geometry.line_address(addresses)
    sets = geometry.set_index(lines)
    tags = geometry.tag_of(lines)
    for i, address in enumerate(addresses.tolist()):
        line = geometry.line_address(address)
        assert lines[i] == line
        assert sets[i] == geometry.set_index(line)
        assert tags[i] == geometry.tag_of(line)
        assert line % 128 == 0
        assert 0 <= sets[i] < 4


def test_lru_victim_is_least_recently_used():
    store = LruTagStore(CacheGeometry(line_bytes=64, num_sets=1, ways=2))
    assert store.install(0, dirty=False) is None
    assert store.install(64, dirty=True) is None
    store.touch(0)  # line 0 becomes MRU; line 64 is now the LRU victim
    victim = store.install(128, dirty=False)
    assert victim is not None and victim.line_addr == 64 and victim.dirty


def test_flush_counts_dirty_lines():
    store = LruTagStore(CacheGeometry(line_bytes=64, num_sets=2, ways=2))
    store.install(0, dirty=True)
    store.install(64, dirty=False)
    store.install(128, dirty=True)
    assert store.resident_lines() == 3
    assert store.flush() == 2
    assert store.resident_lines() == 0


# ------------------------------------------------------- LRU equivalence sweep
def _reference_config(line_bytes, num_sets, ways, write_back, write_allocate):
    return CacheConfig(
        name="prop",
        size_bytes=line_bytes * num_sets * ways,
        line_bytes=line_bytes,
        ways=ways,
        banks=1,
        hit_latency=1,
        write_back=write_back,
        write_allocate=write_allocate,
    )


def _tagstore_replay(config: CacheConfig, trace) -> list[bool]:
    """The batched-engine classification: LruTagStore + the write policy."""
    store = LruTagStore.from_config(config)
    hits = []
    for address, is_write in trace:
        line_addr = store.geometry.line_address(address)
        entry = store.touch(line_addr)
        if entry is not None:
            hits.append(True)
            if is_write and config.write_back:
                entry.dirty = True
            continue
        hits.append(False)
        if is_write and not config.write_allocate:
            continue  # write-no-allocate: the line is not filled
        store.install(line_addr, dirty=is_write and config.write_allocate)
    return hits


def _cache_replay(config: CacheConfig, trace) -> list[bool]:
    """The event-engine classification, observed through the stats deltas."""
    cache = SetAssociativeCache(config)
    hits = []
    for cycle, (address, is_write) in enumerate(trace):
        before = cache.stats.hits
        cache.access(address, AccessType.STORE if is_write else AccessType.LOAD, cycle)
        hits.append(cache.stats.hits != before)
    return hits


@pytest.mark.slow
@settings(deadline=None, max_examples=60)
@given(
    st.sampled_from([16, 32, 64, 128]),
    st.integers(1, 16),
    st.integers(1, 8),
    st.booleans(),
    st.booleans(),
    st.lists(
        st.tuples(st.integers(0, 1 << 14), st.booleans()),
        min_size=1,
        max_size=200,
    ),
)
def test_tagstore_matches_set_associative_cache(
    line_bytes, num_sets, ways, write_back, write_allocate, trace
):
    """Identical hit/miss sequences on random traces, geometries and
    write policies — the property the exact cross-engine miss-count
    equality rests on."""
    config = _reference_config(line_bytes, num_sets, ways, write_back, write_allocate)
    assert _tagstore_replay(config, trace) == _cache_replay(config, trace)


@pytest.mark.slow
@settings(deadline=None, max_examples=20)
@given(
    st.sampled_from([32, 128]),
    st.integers(1, 4),
    st.integers(1, 4),
    st.lists(st.integers(0, 1 << 12), min_size=1, max_size=100),
)
def test_tagstore_contains_matches_cache_residency(line_bytes, num_sets, ways, addresses):
    """After any load-only trace, both models agree on which addresses
    are resident (not just on the hit/miss sequence)."""
    config = _reference_config(line_bytes, num_sets, ways, True, True)
    cache = SetAssociativeCache(config)
    store = LruTagStore.from_config(config)
    for cycle, address in enumerate(addresses):
        cache.access(address, AccessType.LOAD, cycle)
        line_addr = store.geometry.line_address(address)
        if store.touch(line_addr) is None:
            store.install(line_addr, dirty=False)
    for address in addresses:
        assert cache.contains(address) == store.contains(address)
