"""The shared tag core: geometry math and LRU equivalence properties.

The cross-engine fidelity contract rests on one fact: replaying a line
address stream through :class:`~repro.memory.tagcore.LruTagStore` (what
the batched engine's analytic model does one access at a time) or
through the vectorised per-set :class:`~repro.memory.tagcore.LruTagArray`
(what it does by default, a whole wave at once) classifies every access
exactly like :class:`~repro.memory.cache.SetAssociativeCache` (what the
event engine does).  The hypothesis sweeps below check all three on
random mixed load/store traces over random geometries and write
policies — hit/miss sequence, victim sequence and writeback counts —
and are `slow`-marked like the other property sweeps.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.system import CacheConfig
from repro.memory.cache import SetAssociativeCache
from repro.memory.request import AccessType
from repro.memory.tagcore import CacheGeometry, LruTagArray, LruTagStore, group_spans


# ------------------------------------------------------------------ geometry
def test_geometry_scalar_and_vector_agree():
    geometry = CacheGeometry(line_bytes=128, num_sets=4, ways=2)
    addresses = np.array([0, 1, 127, 128, 513, 4096, 65535], dtype=np.int64)
    lines = geometry.line_address(addresses)
    sets = geometry.set_index(lines)
    tags = geometry.tag_of(lines)
    for i, address in enumerate(addresses.tolist()):
        line = geometry.line_address(address)
        assert lines[i] == line
        assert sets[i] == geometry.set_index(line)
        assert tags[i] == geometry.tag_of(line)
        assert line % 128 == 0
        assert 0 <= sets[i] < 4


def test_lru_victim_is_least_recently_used():
    store = LruTagStore(CacheGeometry(line_bytes=64, num_sets=1, ways=2))
    assert store.install(0, dirty=False) is None
    assert store.install(64, dirty=True) is None
    store.touch(0)  # line 0 becomes MRU; line 64 is now the LRU victim
    victim = store.install(128, dirty=False)
    assert victim is not None and victim.line_addr == 64 and victim.dirty


def test_flush_counts_dirty_lines():
    store = LruTagStore(CacheGeometry(line_bytes=64, num_sets=2, ways=2))
    store.install(0, dirty=True)
    store.install(64, dirty=False)
    store.install(128, dirty=True)
    assert store.resident_lines() == 3
    assert store.flush() == 2
    assert store.resident_lines() == 0


# ------------------------------------------------------- LRU equivalence sweep
def _reference_config(line_bytes, num_sets, ways, write_back, write_allocate):
    return CacheConfig(
        name="prop",
        size_bytes=line_bytes * num_sets * ways,
        line_bytes=line_bytes,
        ways=ways,
        banks=1,
        hit_latency=1,
        write_back=write_back,
        write_allocate=write_allocate,
    )


def _tagstore_replay(config: CacheConfig, trace):
    """The sequential reference walk: LruTagStore + the write policy.

    Returns the per-access hit, victim-line (``-1`` if none) and
    victim-dirty sequences, the same observables
    :meth:`LruTagArray.replay` reports.
    """
    store = LruTagStore.from_config(config)
    hits, victims, victim_dirty = [], [], []
    for address, is_write in trace:
        line_addr = store.geometry.line_address(address)
        entry = store.touch(line_addr)
        if entry is not None:
            hits.append(True)
            victims.append(-1)
            victim_dirty.append(False)
            if is_write and config.write_back:
                entry.dirty = True
            continue
        hits.append(False)
        if is_write and not config.write_allocate:
            victims.append(-1)
            victim_dirty.append(False)
            continue  # write-no-allocate: the line is not filled
        victim = store.install(line_addr, dirty=is_write and config.write_allocate)
        victims.append(-1 if victim is None else victim.line_addr)
        victim_dirty.append(victim is not None and victim.dirty)
    return hits, victims, victim_dirty


def _tagarray_replay(config: CacheConfig, trace, chunks=()):
    """The vectorised per-set kernel, optionally replayed in chunks."""
    array = LruTagArray.from_config(config)
    addresses = np.array([address for address, _ in trace], dtype=np.int64)
    writes = np.array([is_write for _, is_write in trace], dtype=bool)
    lines = array.geometry.line_address(addresses)
    n = lines.size
    hits = np.empty(n, dtype=bool)
    victims = np.empty(n, dtype=np.int64)
    victim_dirty = np.empty(n, dtype=bool)
    bounds = [0, *sorted(int(c) % (n + 1) for c in chunks), n]
    for lo, hi in zip(bounds, bounds[1:]):
        result = array.replay(lines[lo:hi], writes[lo:hi])
        hits[lo:hi] = result.hit
        victims[lo:hi] = result.victim_line
        victim_dirty[lo:hi] = result.victim_dirty
    return hits.tolist(), victims.tolist(), victim_dirty.tolist()


def _cache_replay(config: CacheConfig, trace) -> list[bool]:
    """The event-engine classification, observed through the stats deltas."""
    cache = SetAssociativeCache(config)
    hits = []
    for cycle, (address, is_write) in enumerate(trace):
        before = cache.stats.hits
        cache.access(address, AccessType.STORE if is_write else AccessType.LOAD, cycle)
        hits.append(cache.stats.hits != before)
    return hits


@pytest.mark.slow
@settings(deadline=None, max_examples=60)
@given(
    st.sampled_from([16, 32, 64, 128]),
    st.integers(1, 16),
    st.integers(1, 8),
    st.booleans(),
    st.booleans(),
    st.lists(
        st.tuples(st.integers(0, 1 << 14), st.booleans()),
        min_size=1,
        max_size=200,
    ),
)
def test_tagstore_matches_set_associative_cache(
    line_bytes, num_sets, ways, write_back, write_allocate, trace
):
    """Identical hit/miss sequences on random traces, geometries and
    write policies — the property the exact cross-engine miss-count
    equality rests on."""
    config = _reference_config(line_bytes, num_sets, ways, write_back, write_allocate)
    hits, _, _ = _tagstore_replay(config, trace)
    assert hits == _cache_replay(config, trace)


@pytest.mark.slow
@settings(deadline=None, max_examples=60)
@given(
    st.sampled_from([16, 32, 64, 128]),
    st.integers(1, 16),
    st.integers(1, 8),
    st.booleans(),
    st.booleans(),
    st.lists(
        st.tuples(st.integers(0, 1 << 14), st.booleans()),
        min_size=1,
        max_size=200,
    ),
    st.lists(st.integers(0, 200), max_size=3),
)
def test_tagarray_matches_tagstore_and_cache(
    line_bytes, num_sets, ways, write_back, write_allocate, trace, chunks
):
    """The vectorised per-set kernel, the sequential walk and the event
    engine's cache classify any random mixed load/store stream
    identically: hit/miss sequence (all three), victim and victim-dirty
    sequences (both tag-core walks), and the writeback count the cache's
    stats record.  Splitting the replay into chunks must not change
    anything — state carries across batches."""
    config = _reference_config(line_bytes, num_sets, ways, write_back, write_allocate)
    hits, victims, victim_dirty = _tagstore_replay(config, trace)
    array_hits, array_victims, array_dirty = _tagarray_replay(config, trace, chunks)
    assert array_hits == hits
    assert array_victims == victims
    assert array_dirty == victim_dirty
    assert array_hits == _cache_replay(config, trace)
    cache = SetAssociativeCache(config)
    for cycle, (address, is_write) in enumerate(trace):
        cache.access(address, AccessType.STORE if is_write else AccessType.LOAD, cycle)
    assert cache.stats.writebacks == sum(victim_dirty)


def test_tagarray_three_way_agreement_on_thrashing_trace():
    """Fast-lane pin of the 3-way equivalence on a deterministic
    direct-mapped thrashing trace with mixed loads and stores."""
    config = _reference_config(64, 2, 1, True, True)
    rng = np.random.default_rng(3)
    trace = [
        (int(rng.integers(0, 1024)), bool(rng.integers(0, 2))) for _ in range(300)
    ]
    hits, victims, victim_dirty = _tagstore_replay(config, trace)
    assert _tagarray_replay(config, trace, chunks=(97, 201)) == (hits, victims, victim_dirty)
    assert hits == _cache_replay(config, trace)
    assert any(victim_dirty) and not all(hits)


def test_group_spans_partitions_stably():
    keys = np.array([3, 1, 3, 0, 1, 3], dtype=np.int64)
    order, starts, ends = group_spans(keys, upper_bound=4)
    grouped = keys[order]
    assert sorted(order.tolist()) == list(range(6))
    for lo, hi in zip(starts.tolist(), ends.tolist()):
        span = order[lo:hi]
        assert len(set(keys[span].tolist())) == 1
        assert span.tolist() == sorted(span.tolist())  # stream order preserved
    assert grouped.tolist() == sorted(keys.tolist())
    empty_order, empty_starts, empty_ends = group_spans(np.empty(0, dtype=np.int64))
    assert empty_order.size == empty_starts.size == empty_ends.size == 0


@pytest.mark.slow
@settings(deadline=None, max_examples=20)
@given(
    st.sampled_from([32, 128]),
    st.integers(1, 4),
    st.integers(1, 4),
    st.lists(st.integers(0, 1 << 12), min_size=1, max_size=100),
)
def test_tagstore_contains_matches_cache_residency(line_bytes, num_sets, ways, addresses):
    """After any load-only trace, both models agree on which addresses
    are resident (not just on the hit/miss sequence)."""
    config = _reference_config(line_bytes, num_sets, ways, True, True)
    cache = SetAssociativeCache(config)
    store = LruTagStore.from_config(config)
    for cycle, address in enumerate(addresses):
        cache.access(address, AccessType.LOAD, cycle)
        line_addr = store.geometry.line_address(address)
        if store.touch(line_addr) is None:
            store.install(line_addr, dirty=False)
    for address in addresses:
        assert cache.contains(address) == store.contains(address)
