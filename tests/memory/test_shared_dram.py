"""Shared-DRAM device, per-core ports and the sliced L2 memory model."""

import numpy as np
from dataclasses import replace

from repro.compiler.pipeline import compile_kernel
from repro.config.system import DramConfig, MemorySystemConfig, default_system_config
from repro.kernel.builder import KernelBuilder
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.shared_dram import SharedDRAM
from repro.sim.launch import KernelLaunch
from repro.sim.multicore import run_multicore


def test_port_stats_sum_to_device_stats():
    shared = SharedDRAM(DramConfig(), line_bytes=128)
    a, b = shared.port(), shared.port()
    a.access(0, False, 0)
    a.access(128, True, 0)
    b.access(256, False, 0)
    assert a.stats.reads == 1 and a.stats.writes == 1
    assert b.stats.reads == 1 and b.stats.writes == 0
    assert shared.stats.reads == 2 and shared.stats.writes == 1
    assert shared.stats.accesses == a.stats.accesses + b.stats.accesses


def test_ports_contend_for_the_same_bank():
    config = DramConfig(channels=1, banks_per_channel=1, bank_busy_cycles=8)
    shared = SharedDRAM(config, line_bytes=128)
    a, b = shared.port(), shared.port()
    first = a.access(0, False, 0)
    second = b.access(0, False, 0)  # same line, same bank, same cycle
    assert second == first + config.bank_busy_cycles
    assert b.stats.queue_cycles == config.bank_busy_cycles
    assert a.stats.queue_cycles == 0
    # A private device would not have seen the other core's traffic.
    private = SharedDRAM(config, line_bytes=128).port()
    assert private.access(0, False, 0) == first


def test_hierarchy_accepts_a_shared_port():
    config = default_system_config().memory
    shared = SharedDRAM(config.dram, line_bytes=config.l2.line_bytes)
    h1 = MemoryHierarchy(config, dram=shared.port())
    h2 = MemoryHierarchy(config, dram=shared.port())
    h1.load(0, 0)
    h2.load(1 << 20, 0)
    assert h1.stats().flat()["dram_reads"] == 1
    assert h2.stats().flat()["dram_reads"] == 1
    assert shared.stats.reads == 2


def test_l2_slicing_keeps_whole_sets():
    memory = default_system_config().memory
    sliced = memory.sliced(4)
    set_bytes = memory.l2.line_bytes * memory.l2.ways
    assert sliced.l2.size_bytes == memory.l2.size_bytes // 4
    assert sliced.l2.size_bytes % set_bytes == 0
    assert sliced.l1 == memory.l1
    # Slicing never goes below one set, and one core keeps the full L2.
    tiny = replace(
        memory,
        l2=replace(memory.l2, size_bytes=set_bytes),
    )
    assert tiny.sliced(8).l2.size_bytes == set_bytes
    assert memory.sliced(1) is memory


def _stream_launch(n=64):
    b = KernelBuilder("axpy_shared", n)
    b.global_array("x", n)
    b.global_array("out", n)
    tid = b.thread_idx_x()
    b.store("out", tid, b.load("x", tid) * 3.0)
    return KernelLaunch(b.finish(), {"x": np.arange(n) * 0.25})


def test_multicore_shared_dram_counts_traffic_once():
    launch = _stream_launch(n=64)
    compiled = compile_kernel(launch.graph)
    multi = run_multicore(compiled, launch, cores=4, engine="event")
    assert multi.shared_dram is not None
    counters = multi.counters()
    per_port = sum(r.hierarchy.dram.stats.accesses for r in multi.core_results)
    assert per_port == multi.shared_dram.stats.accesses
    assert counters["dram_reads"] + counters["dram_writes"] == per_port


def test_shared_dram_contention_slows_the_sharded_run():
    """With one shared device, 4 cores see more DRAM queueing than one
    core; with private DRAM per core (shared_dram=False), they do not."""
    launch = _stream_launch(n=256)
    compiled_shared = compile_kernel(launch.graph)
    multi = run_multicore(compiled_shared, _stream_launch(n=256), cores=4, engine="event")
    queue = sum(r.hierarchy.dram.stats.queue_cycles for r in multi.core_results)
    assert queue > 0

    config = replace(default_system_config(), cores=4, shared_dram=False).validate()
    compiled_private = compile_kernel(launch.graph, config)
    private = run_multicore(
        compiled_private, _stream_launch(n=256), cores=4, engine="event"
    )
    assert private.shared_dram is None
    private_queue = sum(r.hierarchy.dram.stats.queue_cycles for r in private.core_results)
    assert queue >= private_queue
    assert np.array_equal(multi.array("out"), private.array("out"))


def test_batched_engine_mirrors_contention_into_its_estimate():
    launch = _stream_launch(n=256)
    compiled = compile_kernel(launch.graph)
    single = run_multicore(compiled, _stream_launch(n=256), cores=1, engine="batched")
    multi = run_multicore(compiled, _stream_launch(n=256), cores=4, engine="batched")
    assert np.array_equal(single.array("out"), multi.array("out"))
    multi_queue = sum(r.hierarchy.dram.stats.queue_cycles for r in multi.core_results)
    single_queue = sum(r.hierarchy.dram.stats.queue_cycles for r in single.core_results)
    assert multi_queue > single_queue == 0


def test_sliced_l2_is_wired_into_the_cores():
    launch = _stream_launch(n=64)
    compiled = compile_kernel(launch.graph)
    multi = run_multicore(compiled, launch, cores=4, engine="event")
    full = default_system_config().memory.l2.size_bytes
    for result in multi.core_results:
        assert result.hierarchy.l2.config.size_bytes == full // 4
