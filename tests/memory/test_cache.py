"""Tests for the set-associative cache model."""

import pytest

from repro.config.system import CacheConfig
from repro.memory.cache import SetAssociativeCache
from repro.memory.request import AccessType


def _cache(**overrides):
    params = dict(
        name="L1",
        size_bytes=1024,
        line_bytes=64,
        ways=2,
        banks=2,
        hit_latency=4,
        write_back=True,
        write_allocate=True,
    )
    params.update(overrides)
    return SetAssociativeCache(CacheConfig(**params))


def test_cold_miss_then_hit():
    cache = _cache()
    first = cache.access(0, AccessType.LOAD, cycle=0)
    second = cache.access(4, AccessType.LOAD, cycle=first)
    assert cache.stats.read_misses == 1
    assert cache.stats.read_hits == 1
    assert second - first == cache.config.hit_latency


def test_lru_eviction():
    cache = _cache()
    sets = cache.config.num_sets
    stride = cache.config.line_bytes * sets
    # Fill both ways of set 0, then touch a third line mapping to set 0.
    cache.access(0 * stride, AccessType.LOAD, 0)
    cache.access(1 * stride, AccessType.LOAD, 10)
    cache.access(2 * stride, AccessType.LOAD, 20)
    # The least recently used line (address 0) must be gone.
    assert not cache.contains(0)
    assert cache.contains(2 * stride)


def test_write_back_marks_dirty_and_writes_back_on_eviction():
    events = []
    cache = _cache()
    cache.next_level_access = lambda addr, is_write, cyc: events.append((addr, is_write)) or cyc + 1
    sets = cache.config.num_sets
    stride = cache.config.line_bytes * sets
    cache.access(0, AccessType.STORE, 0)
    cache.access(stride, AccessType.LOAD, 5)
    cache.access(2 * stride, AccessType.LOAD, 10)  # evicts the dirty line
    assert cache.stats.writebacks == 1
    assert any(is_write for _, is_write in events)


def test_write_through_forwards_every_store():
    calls = []

    def next_level(addr, is_write, cycle):
        calls.append(is_write)
        return cycle + 10

    cache = _cache(write_back=False, write_allocate=False)
    cache.next_level_access = next_level
    cache.access(0, AccessType.STORE, 0)
    cache.access(0, AccessType.STORE, 1)
    assert calls == [True, True]
    # write-no-allocate: the line is still not resident
    assert not cache.contains(0)


def test_mshr_merges_outstanding_misses():
    def slow_next_level(addr, is_write, cycle):
        return cycle + 100

    cache = _cache()
    cache.next_level_access = slow_next_level
    cache.access(0, AccessType.LOAD, 0)
    cache.access(4, AccessType.LOAD, 1)  # same line, fill still outstanding
    assert cache.stats.mshr_merges >= 1


def test_bank_conflicts_accumulate():
    cache = _cache(banks=1)
    cache.access(0, AccessType.LOAD, 0)
    cache.access(64, AccessType.LOAD, 0)  # same cycle, same single bank
    assert cache.stats.bank_conflict_cycles >= 1


def test_flush_invalidates():
    cache = _cache()
    cache.access(0, AccessType.STORE, 0)
    dirty = cache.flush()
    assert dirty == 1
    assert not cache.contains(0)


def test_negative_cycle_rejected():
    from repro.errors import MemoryModelError

    with pytest.raises(MemoryModelError):
        _cache().access(0, AccessType.LOAD, -1)
